"""Discrete-event cluster simulator.

The analytical engine (:mod:`repro.mapreduce.engine`) computes phase times
in closed form — fast and exact for synchronized phases, but unable to
express task-level interleavings: multiple jobs sharing the cluster, slot
contention, or speculative copies racing originals.  This package provides
a true event-driven simulator for those questions:

- :mod:`repro.sim.tasks` — tasks with durations, fixed node assignments
  and dependency edges.
- :mod:`repro.sim.simulator` — the event loop: per-node slot pools, FIFO
  ready queues, dependency release on completion.
- :mod:`repro.sim.adapter` — builds task graphs from MapReduce job runs
  (selection → map → shuffle → reduce), so a whole multi-job workload can
  be replayed event by event.
- :mod:`repro.sim.gantt` — text timelines of the simulated schedule.

The single-job simulator agrees with the analytical engine's makespans
(validated in ``tests/test_sim.py``); its value is everything the closed
form cannot do.
"""

from .tasks import SimTask, TaskTimeline
from .simulator import DiscreteEventSimulator, SimulationResult
from .adapter import JobGraphBuilder, build_job_graph
from .speculation import SpeculativeSimulator, SpeculativeRun
from .gantt import render_gantt

__all__ = [
    "SimTask",
    "TaskTimeline",
    "DiscreteEventSimulator",
    "SimulationResult",
    "JobGraphBuilder",
    "build_job_graph",
    "SpeculativeSimulator",
    "SpeculativeRun",
    "render_gantt",
]
