"""Build simulator task graphs from MapReduce workloads.

Reuses the exact duration formulas of the analytical engine
(:mod:`repro.mapreduce.engine`) so a single job's simulated timeline
reproduces the engine's phase arithmetic, while the event loop adds what
the closed form cannot express: slot contention between jobs that share
the cluster.

Graph shape per analysis job (classic Hadoop):

- one **selection** task per assigned block (no deps);
- one **map** task per node holding filtered data, depending on *all*
  selection tasks (the phase barrier the engine models);
- one **shuffle** task per reducer, depending on all maps; its duration
  folds the engine's straggler-vs-fetch rule so single-job timings agree;
- one **reduce** task per reducer, depending on its shuffle;
- one **cleanup** task (the per-job overhead), depending on all reduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.scheduler import Assignment
from ..errors import ConfigError
from ..hdfs.cluster import DatasetView
from ..hdfs.records import Record
from ..mapreduce.costmodel import AppProfile, ClusterCostModel
from ..mapreduce.engine import KV_OVERHEAD, _kv_bytes
from ..mapreduce.job import MapReduceJob
from ..mapreduce.shuffle import MERGE_COST_PER_BYTE
from .tasks import SimTask

__all__ = ["JobGraphBuilder", "build_job_graph"]

NodeId = Hashable


@dataclass
class JobGraphBuilder:
    """Accumulates tasks for one or many jobs over a shared cluster.

    Args:
        cost: the cost model pricing every task (same object the engine
            uses, so durations line up).
    """

    cost: ClusterCostModel
    tasks: List[SimTask] = field(default_factory=list)

    # -- selection phase -------------------------------------------------------

    def add_selection(
        self,
        label: str,
        dataset: DatasetView,
        sub_id: str,
        assignment: Assignment,
        profile: AppProfile,
    ) -> Tuple[List[str], Dict[NodeId, List[Record]]]:
        """One task per assigned block; returns (task ids, filtered data)."""
        placement = dataset.placement()
        task_ids: List[str] = []
        local_data: Dict[NodeId, List[Record]] = {}
        for node, block_ids in assignment.blocks_by_node.items():
            filtered: List[Record] = []
            for bid in block_ids:
                if bid not in placement:
                    raise ConfigError(
                        f"assignment references unknown block {bid}"
                    )
                block = dataset.block(bid)
                read = (
                    self.cost.read_local(block.used_bytes)
                    if node in placement[bid]
                    else self.cost.read_remote(block.used_bytes)
                )
                matched = block.filter(sub_id)
                out_bytes = sum(r.nbytes for r in matched)
                duration = (
                    self.cost.task_overhead_s
                    + read
                    + profile.filter_cpu_per_byte
                    * block.used_bytes
                    * self.cost.data_scale
                    + self.cost.write_local(out_bytes)
                )
                task_id = f"{label}/sel/{bid}"
                self.tasks.append(
                    SimTask(
                        task_id=task_id,
                        node=node,
                        duration=duration,
                        kind="selection",
                        job=label,
                    )
                )
                task_ids.append(task_id)
                filtered.extend(matched)
            local_data[node] = filtered
        return task_ids, local_data

    # -- analysis phase -----------------------------------------------------------

    def add_analysis(
        self,
        label: str,
        job: MapReduceJob,
        local_data: Mapping[NodeId, List[Record]],
        *,
        deps: Sequence[str] = (),
        reducer_nodes: Optional[Sequence[NodeId]] = None,
        release_time: float = 0.0,
    ) -> List[str]:
        """Map/shuffle/reduce/cleanup tasks for one analysis job.

        Args:
            label: job label (task-id prefix).
            job: the MapReduce job (functions execute to size partitions).
            local_data: per-node filtered input (from :meth:`add_selection`).
            deps: task ids every map task must wait for (phase barrier).
            reducer_nodes: hosts for reduce tasks; defaults to round-robin
                over the data-holding nodes.
            release_time: job submission time.

        Returns all created task ids.
        """
        scale = self.cost.data_scale
        dep_set = frozenset(deps)
        map_ids: List[str] = []
        map_durations: List[float] = []
        partition_bytes: Dict[int, int] = {r: 0 for r in range(job.num_reducers)}

        nodes = sorted(local_data.keys(), key=repr)
        if not nodes:
            raise ConfigError("analysis requires at least one input node")
        for node in nodes:
            records = local_data[node]
            nbytes = sum(r.nbytes for r in records)
            emitted: Dict[Any, List[Any]] = {}
            for record in records:
                for k, v in job.run_mapper(record):
                    emitted.setdefault(k, []).append(v)
            for k, values in emitted.items():
                for ck, cv in job.run_combiner(k, values):
                    partition_bytes[job.partition(ck)] += _kv_bytes(ck, cv)
            duration = (
                self.cost.task_overhead_s
                + self.cost.read_local(nbytes)
                + job.profile.map_cpu_seconds(nbytes * scale, len(records) * scale)
            )
            task_id = f"{label}/map/{node}"
            self.tasks.append(
                SimTask(
                    task_id=task_id,
                    node=node,
                    duration=duration,
                    deps=dep_set,
                    kind="map",
                    job=label,
                    release_time=release_time,
                )
            )
            map_ids.append(task_id)
            map_durations.append(duration)

        # engine-equivalent shuffle durations: shuffles dep on all maps, so
        # they start at the LAST map; the engine starts them at the FIRST.
        # Folding the difference into the duration keeps end times equal:
        #   engine_end = first + max(straggler, fetch) + merge
        #             = last + max(0, fetch - straggler) + merge
        straggler = max(map_durations) - min(map_durations)
        hosts = list(reducer_nodes) if reducer_nodes is not None else nodes
        all_map_deps = frozenset(map_ids)
        created = list(map_ids)
        for r in range(job.num_reducers):
            host = hosts[r % len(hosts)]
            fetch = self.cost.transfer(partition_bytes[r])
            merge = MERGE_COST_PER_BYTE * partition_bytes[r] * scale
            shuffle_id = f"{label}/shuf/{r}"
            self.tasks.append(
                SimTask(
                    task_id=shuffle_id,
                    node=host,
                    duration=max(0.0, fetch - straggler) + merge,
                    deps=all_map_deps,
                    kind="shuffle",
                    job=label,
                )
            )
            reduce_id = f"{label}/red/{r}"
            # reduce output bytes approximated by the partition's
            # post-combine volume (exact output needs the reducer run; the
            # engine's write term is small either way)
            out_bytes = int(partition_bytes[r] * 0.5) + KV_OVERHEAD
            self.tasks.append(
                SimTask(
                    task_id=reduce_id,
                    node=host,
                    duration=(
                        self.cost.task_overhead_s
                        + job.profile.reduce_cost_per_byte
                        * partition_bytes[r]
                        * scale
                        + self.cost.write_local(out_bytes)
                    ),
                    deps=frozenset({shuffle_id}),
                    kind="reduce",
                    job=label,
                )
            )
            created.extend((shuffle_id, reduce_id))

        cleanup_id = f"{label}/cleanup"
        self.tasks.append(
            SimTask(
                task_id=cleanup_id,
                node=hosts[0],
                duration=self.cost.job_overhead_s,
                deps=frozenset(
                    f"{label}/red/{r}" for r in range(job.num_reducers)
                ),
                kind="cleanup",
                job=label,
            )
        )
        created.append(cleanup_id)
        return created


def build_job_graph(
    cost: ClusterCostModel,
    dataset: DatasetView,
    sub_id: str,
    job: MapReduceJob,
    assignment: Assignment,
) -> List[SimTask]:
    """Single-job convenience: selection + analysis with the phase barrier."""
    builder = JobGraphBuilder(cost)
    sel_ids, local_data = builder.add_selection(
        job.name, dataset, sub_id, assignment, job.profile
    )
    builder.add_analysis(job.name, job, local_data, deps=sel_ids)
    return builder.tasks
