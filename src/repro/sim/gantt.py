"""Text Gantt charts of simulated schedules.

Renders a :class:`~repro.sim.tasks.TaskTimeline` as one row per node, time
binned into fixed-width columns, each cell showing the kind of work the
node was doing (``S`` selection, ``M`` map, ``s`` shuffle, ``R`` reduce,
``c`` cleanup, ``.`` idle).  Multi-job timelines can color by job instead.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from ..errors import ConfigError
from .tasks import TaskTimeline

__all__ = ["render_gantt"]

_KIND_GLYPHS = {
    "selection": "S",
    "map": "M",
    "shuffle": "s",
    "reduce": "R",
    "cleanup": "c",
    "task": "#",
}


def render_gantt(
    timeline: TaskTimeline,
    *,
    width: int = 72,
    nodes: Optional[Iterable[Hashable]] = None,
    by_job: bool = False,
) -> str:
    """Render the timeline as monospace rows.

    Args:
        timeline: the simulated schedule.
        width: number of time bins (columns).
        nodes: row order; defaults to all nodes seen, sorted.
        by_job: label cells by job (first letter/digit of the job label)
            instead of by task kind.

    Raises:
        ConfigError: empty timeline or non-positive width.
    """
    if width <= 0:
        raise ConfigError("width must be positive")
    if not timeline.intervals:
        raise ConfigError("cannot render an empty timeline")
    horizon = timeline.makespan
    if horizon <= 0:
        raise ConfigError("timeline has zero duration")

    if nodes is None:
        nodes = sorted({t.node for t in timeline.tasks.values()}, key=repr)
    node_list = list(nodes)
    if not node_list:
        raise ConfigError("no nodes to render")

    jobs = sorted({t.job for t in timeline.tasks.values()})
    job_glyph: Dict[str, str] = {}
    if by_job:
        used: set = set()
        for job in jobs:
            glyph = job[:1].upper() if job else "?"
            if glyph in used:  # disambiguate repeated initials with digits
                glyph = str(len(used) % 10)
            used.add(glyph)
            job_glyph[job] = glyph

    rows: List[str] = []
    scale = width / horizon
    label_width = max(len(str(n)) for n in node_list)
    for node in node_list:
        cells = ["."] * width
        for tid, (start, end) in timeline.intervals.items():
            task = timeline.tasks[tid]
            if task.node != node or end <= start:
                continue
            glyph = (
                job_glyph[task.job]
                if by_job
                else _KIND_GLYPHS.get(task.kind, "#")
            )
            lo = int(start * scale)
            hi = max(lo + 1, int(end * scale))
            for i in range(lo, min(hi, width)):
                cells[i] = glyph
        rows.append(f"{str(node).rjust(label_width)} |{''.join(cells)}|")
    header = (
        f"{' ' * label_width}  0{' ' * (width - len(f'{horizon:.1f}s') - 1)}"
        f"{horizon:.1f}s"
    )
    if by_job:
        pairs = " ".join(f"{job_glyph[job]}={job}" for job in jobs)
        legend = f"legend: {pairs} .=idle"
    else:
        legend = (
            "legend: S=selection M=map s=shuffle R=reduce c=cleanup "
            "#=other .=idle"
        )
    return "\n".join([header] + rows + [legend])
