"""The event loop: dependency-aware task execution on slotted nodes.

Semantics:

* every node owns ``slots_per_node`` execution slots;
* a task becomes *ready* when all its dependencies completed and its
  release time passed;
* each node runs its ready tasks FIFO (by readiness time, then task id —
  deterministic), one per free slot;
* completion events free the slot and may ready successor tasks.

The loop is a classic priority-queue simulation: O((T + E) log T) for T
tasks and E dependency edges.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..errors import ConfigError
from .tasks import SimTask, TaskTimeline

__all__ = ["DiscreteEventSimulator", "SimulationResult"]

NodeId = Hashable


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    timeline: TaskTimeline
    events_processed: int

    @property
    def makespan(self) -> float:
        return self.timeline.makespan


class DiscreteEventSimulator:
    """Runs a task set to completion on a slotted cluster.

    Args:
        slots_per_node: concurrent tasks per node (Hadoop map slots).
    """

    def __init__(self, *, slots_per_node: int = 1) -> None:
        if slots_per_node <= 0:
            raise ConfigError("slots_per_node must be positive")
        self.slots_per_node = slots_per_node

    # -- validation ----------------------------------------------------------------

    @staticmethod
    def _validate(tasks: Dict[str, SimTask]) -> None:
        for task in tasks.values():
            unknown = task.deps - tasks.keys()
            if unknown:
                raise ConfigError(
                    f"task {task.task_id} depends on unknown tasks {sorted(unknown)[:3]}"
                )
        # cycle detection via Kahn's algorithm
        indegree = {tid: len(t.deps) for tid, t in tasks.items()}
        succs: Dict[str, List[str]] = {tid: [] for tid in tasks}
        for tid, task in tasks.items():
            for dep in task.deps:
                succs[dep].append(tid)
        queue = [tid for tid, d in indegree.items() if d == 0]
        seen = 0
        while queue:
            tid = queue.pop()
            seen += 1
            for nxt in succs[tid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        if seen != len(tasks):
            raise ConfigError("task graph contains a dependency cycle")

    # -- the event loop ---------------------------------------------------------------

    def run(self, tasks: Iterable[SimTask]) -> SimulationResult:
        """Simulate all tasks; returns the realized timeline.

        Raises:
            ConfigError: duplicate ids, unknown dependencies, or cycles.
        """
        task_map: Dict[str, SimTask] = {}
        for task in tasks:
            if task.task_id in task_map:
                raise ConfigError(f"duplicate task id {task.task_id!r}")
            task_map[task.task_id] = task
        self._validate(task_map)

        remaining_deps: Dict[str, Set[str]] = {
            tid: set(t.deps) for tid, t in task_map.items()
        }
        successors: Dict[str, List[str]] = {tid: [] for tid in task_map}
        for tid, task in task_map.items():
            for dep in task.deps:
                successors[dep].append(tid)

        free_slots: Dict[NodeId, int] = {}
        # per-node FIFO of ready tasks: (ready_time, task_id)
        ready: Dict[NodeId, List[Tuple[float, str]]] = {}
        for task in task_map.values():
            free_slots.setdefault(task.node, self.slots_per_node)
            ready.setdefault(task.node, [])

        # event heap: (time, seq, kind, payload); kinds: "ready", "finish"
        events: List[Tuple[float, int, str, str]] = []
        seq = 0
        for tid, task in task_map.items():
            if not task.deps:
                heapq.heappush(events, (task.release_time, seq, "ready", tid))
                seq += 1

        intervals: Dict[str, Tuple[float, float]] = {}
        processed = 0
        now = 0.0

        def start_available(node: NodeId, time: float) -> None:
            nonlocal seq
            while free_slots[node] > 0 and ready[node]:
                _rt, tid = heapq.heappop(ready[node])
                free_slots[node] -= 1
                task = task_map[tid]
                end = time + task.duration
                intervals[tid] = (time, end)
                heapq.heappush(events, (end, seq, "finish", tid))
                seq += 1

        while events:
            now, _s, kind, tid = heapq.heappop(events)
            processed += 1
            task = task_map[tid]
            if kind == "ready":
                heapq.heappush(ready[task.node], (now, tid))
                start_available(task.node, now)
            else:  # finish
                free_slots[task.node] += 1
                for succ in successors[tid]:
                    remaining_deps[succ].discard(tid)
                    if not remaining_deps[succ]:
                        ready_at = max(now, task_map[succ].release_time)
                        heapq.heappush(events, (ready_at, seq, "ready", succ))
                        seq += 1
                start_available(task.node, now)

        if len(intervals) != len(task_map):  # pragma: no cover - guarded by validate
            missing = sorted(set(task_map) - set(intervals))[:3]
            raise ConfigError(f"tasks never ran (scheduler bug?): {missing}")
        return SimulationResult(
            timeline=TaskTimeline(intervals=intervals, tasks=task_map),
            events_processed=processed,
        )
