"""The event loop: dependency-aware task execution on slotted nodes.

Semantics:

* every node owns ``slots_per_node`` execution slots;
* a task becomes *ready* when all its dependencies completed and its
  release time passed;
* each node runs its ready tasks FIFO (by readiness time, then task id —
  deterministic), one per free slot;
* completion events free the slot and may ready successor tasks.

The loop is a classic priority-queue simulation: O((T + E) log T) for T
tasks and E dependency edges.

With a :class:`~repro.faults.injector.FaultInjector` the run-once model
becomes an attempt lifecycle: transient failures burn partial work and
retry after exponential backoff, planned node crashes kill running and
queued work (detected one heartbeat timeout later, then re-routed to a
live node), and nodes that keep failing attempts are blacklisted.  The
fault-free path is byte-identical to the original loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids a cycle)
    from ..faults.injector import FaultInjector
    from ..faults.retry import RetryPolicy

from ..errors import ConfigError, FaultError, TaskAttemptError
from ..obs import NULL_OBS, Observability
from .tasks import SimTask, TaskTimeline

__all__ = ["DiscreteEventSimulator", "SimulationResult"]

NodeId = Hashable


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    The fault-accounting fields stay at their zero values for fault-free
    runs; under injection they mirror :class:`repro.metrics.RecoverySummary`.
    """

    timeline: TaskTimeline
    events_processed: int
    attempts_histogram: Dict[int, int] = field(default_factory=dict)
    wasted_seconds: float = 0.0
    dead_nodes: List[NodeId] = field(default_factory=list)
    blacklisted_nodes: List[NodeId] = field(default_factory=list)
    migrated_tasks: List[str] = field(default_factory=list)
    cancelled_tasks: List[str] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def cancelled(self) -> bool:
        """True when a ``cancel_at`` horizon cut the run short."""
        return bool(self.cancelled_tasks)


class DiscreteEventSimulator:
    """Runs a task set to completion on a slotted cluster.

    Args:
        slots_per_node: concurrent tasks per node (Hadoop map slots).
    """

    def __init__(self, *, slots_per_node: int = 1) -> None:
        if slots_per_node <= 0:
            raise ConfigError("slots_per_node must be positive")
        self.slots_per_node = slots_per_node

    # -- validation ----------------------------------------------------------------

    @staticmethod
    def _validate(tasks: Dict[str, SimTask]) -> None:
        for task in tasks.values():
            unknown = task.deps - tasks.keys()
            if unknown:
                raise ConfigError(
                    f"task {task.task_id} depends on unknown tasks {sorted(unknown)[:3]}"
                )
        # cycle detection via Kahn's algorithm
        indegree = {tid: len(t.deps) for tid, t in tasks.items()}
        succs: Dict[str, List[str]] = {tid: [] for tid in tasks}
        for tid, task in tasks.items():
            for dep in task.deps:
                succs[dep].append(tid)
        queue = [tid for tid, d in indegree.items() if d == 0]
        seen = 0
        while queue:
            tid = queue.pop()
            seen += 1
            for nxt in succs[tid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        if seen != len(tasks):
            raise ConfigError("task graph contains a dependency cycle")

    # -- the event loop ---------------------------------------------------------------

    def run(
        self,
        tasks: Iterable[SimTask],
        *,
        injector: Optional["FaultInjector"] = None,
        policy: Optional["RetryPolicy"] = None,
        obs: Observability = NULL_OBS,
        cancel_at: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate all tasks; returns the realized timeline.

        Args:
            injector: optional fault oracle; enables the attempt lifecycle.
            policy: retry/backoff/blacklist knobs (defaults when omitted;
                only meaningful together with ``injector``).
            obs: observability bundle; spans and counters are recorded
                post-hoc from the realized timeline, so the event loop
                itself is untouched.
            cancel_at: optional deadline on the simulated clock.  Events
                past it never run: in-flight work is abandoned, its slots
                are implicitly released, and every task without a completed
                interval is reported in ``cancelled_tasks`` instead of
                raising — the cooperative cancellation the analysis
                service's job deadlines ride on.  ``None`` (the default)
                keeps the run-to-completion semantics byte-identical.

        Raises:
            ConfigError: duplicate ids, unknown dependencies, or cycles.
            TaskAttemptError: a task exhausted its retry budget.
            FaultError: no live node remains to run a task.
        """
        if cancel_at is not None and cancel_at < 0:
            raise ConfigError("cancel_at must be non-negative")
        task_map: Dict[str, SimTask] = {}
        for task in tasks:
            if task.task_id in task_map:
                raise ConfigError(f"duplicate task id {task.task_id!r}")
            task_map[task.task_id] = task
        self._validate(task_map)
        if injector is not None:
            return self._run_with_faults(task_map, injector, policy, obs, cancel_at)

        # Fault-free fast path: tasks and nodes carry dense int indices so
        # the heaps compare ints, dependency sets collapse to counters, and
        # each node hands out slot indices from a free-list stack.  Task
        # ranks follow sorted task-id order, so the int tie-breaks in the
        # per-node ready heaps reproduce the original string tie-breaks —
        # the realized timeline is bit-identical to the reference loop
        # (the fault-aware loop below, run with an empty plan, is that
        # reference; the equivalence tests drive both).
        EV_READY, EV_FINISH = 0, 1
        sorted_tids = sorted(task_map)
        rank: Dict[str, int] = {tid: r for r, tid in enumerate(sorted_tids)}
        n_tasks = len(sorted_tids)
        node_of: List[int] = [0] * n_tasks
        duration: List[float] = [0.0] * n_tasks
        release: List[float] = [0.0] * n_tasks
        node_rank: Dict[NodeId, int] = {}
        for tid in sorted_tids:
            task = task_map[tid]
            r = rank[tid]
            ni = node_rank.get(task.node)
            if ni is None:
                ni = node_rank[task.node] = len(node_rank)
            node_of[r] = ni
            duration[r] = task.duration
            release[r] = task.release_time
        remaining: List[int] = [0] * n_tasks
        successors: List[List[int]] = [[] for _ in range(n_tasks)]
        for tid, task in task_map.items():
            r = rank[tid]
            remaining[r] = len(task.deps)
            for dep in task.deps:
                successors[rank[dep]].append(r)

        num_nodes = len(node_rank)
        slot_free: List[List[int]] = [
            list(range(self.slots_per_node - 1, -1, -1)) for _ in range(num_nodes)
        ]
        slot_of: List[int] = [0] * n_tasks
        # per-node FIFO of ready tasks: (ready_time, task rank)
        ready: List[List[Tuple[float, int]]] = [[] for _ in range(num_nodes)]

        # single event heap: (time, seq, kind, task rank)
        events: List[Tuple[float, int, int, int]] = []
        seq = 0
        for tid, task in task_map.items():
            if not task.deps:
                heapq.heappush(events, (task.release_time, seq, EV_READY, rank[tid]))
                seq += 1

        starts: List[float] = [0.0] * n_tasks
        ends: List[float] = [0.0] * n_tasks
        finished: List[bool] = [False] * n_tasks
        start_order: List[int] = []
        processed = 0

        def start_available(ni: int, time: float) -> None:
            nonlocal seq
            slots = slot_free[ni]
            rheap = ready[ni]
            while slots and rheap:
                _rt, r = heapq.heappop(rheap)
                slot_of[r] = slots.pop()
                end = time + duration[r]
                starts[r] = time
                ends[r] = end
                start_order.append(r)
                heapq.heappush(events, (end, seq, EV_FINISH, r))
                seq += 1

        while events:
            if cancel_at is not None and events[0][0] > cancel_at:
                break
            now, _s, kind, r = heapq.heappop(events)
            processed += 1
            ni = node_of[r]
            if kind == EV_READY:
                heapq.heappush(ready[ni], (now, r))
                start_available(ni, now)
            else:  # finish: return the slot index, release successors
                finished[r] = True
                slot_free[ni].append(slot_of[r])
                for succ in successors[r]:
                    remaining[succ] -= 1
                    if not remaining[succ]:
                        ready_at = max(now, release[succ])
                        heapq.heappush(events, (ready_at, seq, EV_READY, succ))
                        seq += 1
                start_available(ni, now)

        if cancel_at is None and len(start_order) != n_tasks:  # pragma: no cover
            ran = {sorted_tids[r] for r in start_order}
            missing = sorted(set(task_map) - ran)[:3]
            raise ConfigError(f"tasks never ran (scheduler bug?): {missing}")
        # intervals in start order, matching the reference loop's insertion
        # order; under a cancel horizon only completed tasks count
        intervals: Dict[str, Tuple[float, float]] = {
            sorted_tids[r]: (starts[r], ends[r])
            for r in start_order
            if finished[r]
        }
        cancelled = (
            [tid for tid in sorted_tids if not finished[rank[tid]]]
            if cancel_at is not None
            else []
        )
        if obs.tracer.enabled:
            with obs.tracer.span(
                "sim/run", category="phase", sim_start=0.0, tasks=len(task_map)
            ) as phase:
                for tid in sorted(intervals):
                    start, end = intervals[tid]
                    task = task_map[tid]
                    obs.tracer.record(
                        tid,
                        category="task",
                        sim_start=start,
                        sim_end=end,
                        track=f"node {task.node}",
                        kind=task.kind,
                    )
                phase.sim(0.0, max((e for _s, e in intervals.values()), default=0.0))
        if obs.metrics.enabled:
            obs.metrics.counter(
                "sim_events_total", help="events popped off the simulation heap"
            ).inc(processed)
            obs.metrics.counter(
                "sim_tasks_total", help="tasks driven to completion"
            ).inc(len(task_map))
        return SimulationResult(
            timeline=TaskTimeline(intervals=intervals, tasks=task_map),
            events_processed=processed,
            cancelled_tasks=cancelled,
        )

    # -- the fault-aware event loop ------------------------------------------------

    def _run_with_faults(
        self,
        task_map: Dict[str, SimTask],
        injector: "FaultInjector",
        policy: Optional["RetryPolicy"],
        obs: Observability = NULL_OBS,
        cancel_at: Optional[float] = None,
    ) -> SimulationResult:
        """The attempt-lifecycle event loop (see module docstring)."""
        from ..faults.retry import AttemptLog, NodeBlacklist, RetryPolicy

        traced = obs.tracer.enabled
        # (task, attempt, node, outcome, sim start, sim end) — turned into
        # spans after the loop so the loop itself stays untouched
        attempt_trace: List[Tuple[str, int, NodeId, str, float, float]] = []

        policy = policy or RetryPolicy()
        log = AttemptLog()
        blacklist = NodeBlacklist(policy.blacklist_after)

        remaining_deps: Dict[str, Set[str]] = {
            tid: set(t.deps) for tid, t in task_map.items()
        }
        successors: Dict[str, List[str]] = {tid: [] for tid in task_map}
        for tid, task in task_map.items():
            for dep in task.deps:
                successors[dep].append(tid)

        free_slots: Dict[NodeId, int] = {}
        ready: Dict[NodeId, List[Tuple[float, str]]] = {}
        for task in task_map.values():
            free_slots.setdefault(task.node, self.slots_per_node)
            ready.setdefault(task.node, [])

        dead: Set[NodeId] = set()
        cut: Set[NodeId] = set()
        # explicit node scopes only: the simulator has no rack topology,
        # so a rack-scoped partition raises a clear ConfigError here
        partitions = (
            injector.resolve_partitions(sorted(free_slots, key=repr))
            if injector.plan.partitions
            else []
        )
        attempt_no: Dict[str, int] = {tid: 1 for tid in task_map}
        failures_of: Dict[str, int] = {tid: 0 for tid in task_map}
        token: Dict[str, int] = {tid: 0 for tid in task_map}
        # tid -> (node, start time, token of the live attempt)
        running: Dict[str, Tuple[NodeId, float, int]] = {}
        final_node: Dict[str, NodeId] = {}
        intervals: Dict[str, Tuple[float, float]] = {}
        migrated: List[str] = []

        # event heap: (time, seq, kind, payload, attempt token)
        events: List[Tuple[float, int, str, object, int]] = []
        seq = 0

        def push(time: float, kind: str, payload: object, tok: int = 0) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, payload, tok))
            seq += 1

        # same-time ordering: heals first (nodes rejoin before anything
        # else happens), then crashes, then partition starts and task
        # readiness — encoded purely by push order
        for p in partitions:
            push(p.heals_at, "pheal", p)
        for crash in injector.crashes_chronological():
            if crash.node in free_slots:
                push(crash.time, "crash", crash.node)
        for p in partitions:
            push(p.start, "pstart", p)
        for tid, task in task_map.items():
            if not task.deps:
                push(task.release_time, "ready", tid)

        def usable(node: NodeId) -> bool:
            return (
                node not in dead
                and node not in cut
                and not blacklist.is_blacklisted(node)
            )

        def route(tid: str) -> NodeId:
            """The node this task runs on next: home node while it is
            usable, else the live node with the shortest queue."""
            home = task_map[tid].node
            if usable(home):
                return home
            candidates = [n for n in free_slots if usable(n)]
            if not candidates:
                # every live node is benched: relax the blacklist rather
                # than fail the job (mirrors ChaosRunner._reschedule) —
                # a benched node is still preferable to no node at all
                candidates = [
                    n for n in free_slots if n not in dead and n not in cut
                ]
            if not candidates:
                raise FaultError(
                    f"no live node left to run task {tid!r} "
                    f"(dead={sorted(dead, key=repr)}, "
                    f"blacklisted={blacklist.nodes})"
                )
            chosen = min(
                candidates,
                key=lambda n: (
                    len(ready[n]) + sum(1 for _t, (rn, _s, _k) in running.items() if rn == n),
                    repr(n),
                ),
            )
            if chosen != home:
                migrated.append(tid)
            return chosen

        def exhaust(tid: str, node: NodeId) -> TaskAttemptError:
            return TaskAttemptError(
                f"task {tid!r} failed {policy.max_attempts} attempts",
                task_id=tid,
                node=node,
                attempts=policy.max_attempts,
            )

        def evacuate(node: NodeId, time: float) -> None:
            """Re-route every queued (not yet started) task off a node."""
            for _rt, qtid in ready[node]:
                push(time, "ready", qtid)
            ready[node] = []

        def start_available(node: NodeId, time: float) -> None:
            if node in dead or node in cut:
                return
            if blacklist.is_blacklisted(node) and any(usable(n) for n in free_slots):
                return  # benched, and a healthy node exists to take the work
            while free_slots[node] > 0 and ready[node]:
                _rt, tid = heapq.heappop(ready[node])
                free_slots[node] -= 1
                attempt = attempt_no[tid]
                duration = task_map[tid].duration * injector.slowdown(node, time)
                token[tid] += 1
                running[tid] = (node, time, token[tid])
                if injector.attempt_fails(tid, attempt, node):
                    push(time + duration * injector.waste_fraction, "fail", tid, token[tid])
                else:
                    push(time + duration, "finish", tid, token[tid])

        processed = 0
        while events:
            if cancel_at is not None and events[0][0] > cancel_at:
                break
            now, _s, kind, payload, tok = heapq.heappop(events)
            processed += 1
            if kind == "pstart":
                # the cut side goes silent: running attempts are lost (the
                # driver re-runs them after a heartbeat), queued work is
                # re-routed, but the nodes themselves rejoin at heal time
                for node in payload.sorted_nodes():
                    if node not in free_slots or node in dead:
                        continue
                    cut.add(node)
                    for tid in sorted(
                        t for t, (n, _s2, _k) in running.items() if n == node
                    ):
                        _n, start, _tk = running.pop(tid)
                        free_slots[node] += 1
                        log.record(tid, node, attempt_no[tid], "partition", now - start)
                        if traced:
                            attempt_trace.append(
                                (tid, attempt_no[tid], node, "partition", start, now)
                            )
                        attempt_no[tid] += 1
                        if attempt_no[tid] > policy.max_attempts:
                            raise exhaust(tid, node)
                        push(now + policy.heartbeat_timeout_s, "ready", tid)
                    evacuate(node, now)
                continue
            if kind == "pheal":
                for node in payload.sorted_nodes():
                    cut.discard(node)
                    if node in free_slots and node not in dead:
                        start_available(node, now)
                continue
            if kind == "crash":
                node = payload
                if node in dead:
                    continue
                dead.add(node)
                for tid in sorted(t for t, (n, _s2, _k) in running.items() if n == node):
                    _n, start, _tk = running.pop(tid)
                    log.record(tid, node, attempt_no[tid], "crash", now - start)
                    if traced:
                        attempt_trace.append(
                            (tid, attempt_no[tid], node, "crash", start, now)
                        )
                    attempt_no[tid] += 1
                    if attempt_no[tid] > policy.max_attempts:
                        raise exhaust(tid, node)
                    # the JobTracker only learns of the death a heartbeat later
                    push(now + policy.heartbeat_timeout_s, "ready", tid)
                evacuate(node, now)
                continue
            tid = payload
            if kind == "ready":
                node = route(tid)
                heapq.heappush(ready[node], (now, tid))
                start_available(node, now)
                continue
            # finish / fail of one attempt
            entry = running.get(tid)
            if entry is None or entry[2] != tok:
                continue  # stale event: the attempt died with its node
            node, start, _tk = entry
            del running[tid]
            free_slots[node] += 1
            if kind == "fail":
                log.record(tid, node, attempt_no[tid], "fault", now - start)
                if traced:
                    attempt_trace.append(
                        (tid, attempt_no[tid], node, "fault", start, now)
                    )
                newly_benched = blacklist.record_failure(node)
                attempt_no[tid] += 1
                failures_of[tid] += 1
                if attempt_no[tid] > policy.max_attempts:
                    raise exhaust(tid, node)
                push(
                    now
                    + policy.backoff(
                        failures_of[tid], task_key=tid, seed=injector.plan.seed
                    ),
                    "ready",
                    tid,
                )
                if newly_benched:
                    evacuate(node, now)
                else:
                    start_available(node, now)
                continue
            # finish
            log.record(tid, node, attempt_no[tid], "ok")
            if traced:
                attempt_trace.append((tid, attempt_no[tid], node, "ok", start, now))
            intervals[tid] = (start, now)
            final_node[tid] = node
            for succ in successors[tid]:
                remaining_deps[succ].discard(tid)
                if not remaining_deps[succ]:
                    push(max(now, task_map[succ].release_time), "ready", succ)
            start_available(node, now)

        if cancel_at is None and len(intervals) != len(task_map):  # pragma: no cover
            missing = sorted(set(task_map) - set(intervals))[:3]
            raise ConfigError(f"tasks never ran (scheduler bug?): {missing}")
        cancelled = sorted(set(task_map) - set(intervals)) if cancel_at is not None else []
        realized = {
            tid: (
                task
                if final_node.get(tid, task.node) == task.node
                else replace(task, node=final_node[tid])
            )
            for tid, task in task_map.items()
        }
        if traced:
            by_task: Dict[str, List[Tuple[int, NodeId, str, float, float]]] = {}
            for tid, attempt, node, outcome, start, end in attempt_trace:
                by_task.setdefault(tid, []).append((attempt, node, outcome, start, end))
            with obs.tracer.span(
                "sim/run", category="phase", sim_start=0.0, tasks=len(task_map)
            ) as sim_phase:
                for tid in sorted(intervals):
                    tries = sorted(by_task.get(tid, []))
                    first = tries[0][3] if tries else intervals[tid][0]
                    parent = obs.tracer.record(
                        tid,
                        category="task",
                        sim_start=first,
                        sim_end=intervals[tid][1],
                        track=f"node {final_node[tid]}",
                        kind=task_map[tid].kind,
                        attempts=len(tries),
                    )
                    for attempt, node, outcome, start, end in tries:
                        obs.tracer.record(
                            f"{tid}#a{attempt}",
                            category="attempt",
                            sim_start=start,
                            sim_end=end,
                            parent=parent.span_id,
                            track=f"node {node}",
                            outcome=outcome,
                        )
                sim_phase.sim(
                    0.0, max((e for _s, e in intervals.values()), default=0.0)
                )
        if obs.metrics.enabled:
            obs.metrics.counter(
                "sim_events_total", help="events popped off the simulation heap"
            ).inc(processed)
            obs.metrics.counter(
                "sim_tasks_total", help="tasks driven to completion"
            ).inc(len(task_map))
            outcomes = obs.metrics.counter(
                "fault_attempts_total",
                help="task attempts by outcome",
                labelnames=("outcome",),
            )
            for record in log.records:
                outcomes.inc(outcome=record.outcome)
            obs.metrics.counter(
                "sim_migrated_tasks_total",
                help="tasks re-routed off their home node",
            ).inc(len(set(migrated)))
        return SimulationResult(
            timeline=TaskTimeline(intervals=intervals, tasks=realized),
            events_processed=processed,
            attempts_histogram=log.histogram(),
            wasted_seconds=log.wasted_seconds,
            dead_nodes=sorted(dead, key=repr),
            blacklisted_nodes=blacklist.nodes,
            migrated_tasks=sorted(set(migrated)),
            cancelled_tasks=cancelled,
        )
