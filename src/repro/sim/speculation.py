"""Dynamic speculative execution inside the event-driven simulator.

The analytic model (:mod:`repro.mapreduce.speculative`) approximates
Hadoop's backup-task policy with closed-form timings.  This module runs it
*dynamically*: after simulating a task set once, stragglers are detected
against their phase's median runtime, backup copies are injected on the
least-loaded nodes, and the simulation is re-run with
``min(original, backup)`` race semantics resolved by an extra
post-processing pass.

The two models agree on the qualitative conclusion (backups cannot undo
data imbalance — they reprocess the same oversized input) but the dynamic
version also accounts for slot contention caused by the backups
themselves, which the closed form ignores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from ..faults.dedup import FirstWinLedger
from ..faults.health import validate_health
from .simulator import DiscreteEventSimulator
from .tasks import SimTask, TaskTimeline

__all__ = ["SpeculativeSimulator", "SpeculativeRun"]

NodeId = Hashable


@dataclass
class SpeculativeRun:
    """Outcome of a speculative simulation.

    Attributes:
        timeline: the realized schedule *with* backup tasks included.
        effective_end: task id → completion time after racing originals
            against their backups.
        backups: original task id → backup task id.
        wasted_seconds: slot time burned by losing copies.
        ledger: the first-win ledger that settled every completion race —
            each task's output is counted from exactly one copy.
    """

    timeline: TaskTimeline
    effective_end: Dict[str, float]
    backups: Dict[str, str]
    wasted_seconds: float
    ledger: FirstWinLedger = field(default_factory=FirstWinLedger)

    @property
    def makespan(self) -> float:
        """Completion of the last *effective* task end."""
        return max(self.effective_end.values(), default=0.0)


class SpeculativeSimulator:
    """Two-pass speculative simulation over a kind-filtered task set.

    Args:
        slowdown_threshold: duration multiple of the phase median above
            which a task gets a backup.
        relocation_speedup: backup-host speedup on the same input.
        speculate_kinds: task kinds eligible for backups (maps by default;
            Hadoop speculates maps and reduces, selection tasks are uniform
            so backups never trigger for them).
        health: optional node → health score in ``(0, 1]`` from the
            φ-accrual detector.  A task on a node with health ``h`` uses
            the tightened threshold ``1 + (slowdown_threshold - 1) * h``:
            suspected nodes get speculated earlier, healthy nodes keep the
            configured margin.  ``None`` (or all-1.0) is the original
            behaviour.
    """

    def __init__(
        self,
        *,
        slowdown_threshold: float = 1.5,
        relocation_speedup: float = 1.2,
        speculate_kinds: Tuple[str, ...] = ("map",),
        slots_per_node: int = 1,
        health: Optional[Mapping[NodeId, float]] = None,
    ) -> None:
        if slowdown_threshold <= 1.0:
            raise ConfigError("slowdown_threshold must exceed 1.0")
        if relocation_speedup < 1.0:
            raise ConfigError("relocation_speedup must be >= 1.0")
        if not speculate_kinds:
            raise ConfigError("speculate_kinds must be non-empty")
        validate_health(health)
        self.slowdown_threshold = slowdown_threshold
        self.relocation_speedup = relocation_speedup
        self.speculate_kinds = tuple(speculate_kinds)
        self.health = dict(health) if health is not None else {}
        self.simulator = DiscreteEventSimulator(slots_per_node=slots_per_node)

    # -- straggler detection -----------------------------------------------------

    def threshold_for(self, node: NodeId) -> float:
        """Straggler multiple for tasks on ``node``, tightened by suspicion."""
        h = self.health.get(node, 1.0)
        return 1.0 + (self.slowdown_threshold - 1.0) * h

    def _stragglers(self, tasks: Dict[str, SimTask]) -> List[str]:
        candidates = [
            t for t in tasks.values() if t.kind in self.speculate_kinds
        ]
        if len(candidates) < 2:
            return []
        durations = sorted(t.duration for t in candidates)
        median = durations[len(durations) // 2]
        if median <= 0:
            return []
        return [
            t.task_id
            for t in candidates
            if t.duration > self.threshold_for(t.node) * median
        ]

    # -- the two-pass run -----------------------------------------------------------

    def run(self, tasks: Iterable[SimTask]) -> SpeculativeRun:
        """Simulate with dynamically injected backup copies.

        Pass 1 simulates the original graph to learn when stragglers would
        finish and which nodes idle first.  Pass 2 adds one backup per
        straggler — released when the phase median completes, placed on the
        node with the least busy time — and re-simulates.  Effective
        completion of a speculated task is the earlier of its two copies.
        """
        task_map = {t.task_id: t for t in tasks}
        base = self.simulator.run(task_map.values())
        stragglers = self._stragglers(task_map)
        if not stragglers:
            ledger = FirstWinLedger()
            for tid in sorted(task_map):
                ledger.offer(tid, tid, base.timeline.end_of(tid))
            return SpeculativeRun(
                timeline=base.timeline,
                effective_end={
                    tid: base.timeline.end_of(tid) for tid in task_map
                },
                backups={},
                wasted_seconds=0.0,
                ledger=ledger,
            )

        spec_candidates = [
            tid
            for tid, t in task_map.items()
            if t.kind in self.speculate_kinds
        ]
        median_end = sorted(
            base.timeline.end_of(tid) for tid in spec_candidates
        )[len(spec_candidates) // 2]
        nodes = sorted(
            {t.node for t in task_map.values()},
            key=lambda n: (base.timeline.node_busy_time(n), repr(n)),
        )

        augmented: Dict[str, SimTask] = dict(task_map)
        backups: Dict[str, str] = {}
        for i, tid in enumerate(sorted(stragglers)):
            original = task_map[tid]
            host = nodes[i % len(nodes)]
            if host == original.node and len(nodes) > 1:
                host = nodes[(i + 1) % len(nodes)]
            backup_id = f"{tid}#backup"
            augmented[backup_id] = SimTask(
                task_id=backup_id,
                node=host,
                duration=original.duration / self.relocation_speedup,
                deps=original.deps,
                kind=f"{original.kind}-backup",
                job=original.job,
                release_time=max(original.release_time, median_end),
            )
            backups[tid] = backup_id

        rerun = self.simulator.run(augmented.values())
        effective: Dict[str, float] = {}
        ledger = FirstWinLedger()
        wasted = 0.0
        for tid in sorted(task_map):
            end = rerun.timeline.end_of(tid)
            if tid in backups:
                backup_id = backups[tid]
                backup_end = rerun.timeline.end_of(backup_id)
                # First response wins; an exact tie goes to the backup
                # (it was launched for a reason), matching the historical
                # loser-start accounting.
                entries = sorted(
                    [
                        (backup_end, 0, backup_id),
                        (end, 1, tid),
                    ]
                )
                for arrival, _rank, copy_id in entries:
                    ledger.offer(tid, copy_id, arrival)
                win = ledger.winner(tid)
                loser_id = entries[1][2]
                wasted += max(
                    win.arrival - rerun.timeline.start_of(loser_id), 0.0
                )
                end = win.arrival
            else:
                ledger.offer(tid, tid, end)
            effective[tid] = end
        return SpeculativeRun(
            timeline=rerun.timeline,
            effective_end=effective,
            backups=backups,
            wasted_seconds=wasted,
            ledger=ledger,
        )
