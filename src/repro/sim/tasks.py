"""Task model for the discrete-event simulator.

A :class:`SimTask` is a unit of work with a fixed duration, a fixed node
(placement decisions happen *before* simulation — they are exactly what
DataNet vs stock scheduling differ on), and dependency edges to other
tasks.  The simulator turns a set of tasks into a :class:`TaskTimeline`
of realized ``(start, end)`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..errors import ConfigError

__all__ = ["SimTask", "TaskTimeline"]

NodeId = Hashable


@dataclass(frozen=True)
class SimTask:
    """One schedulable unit of work.

    Attributes:
        task_id: unique id within a simulation.
        node: the node whose slot pool executes this task.
        duration: seconds of slot time consumed.
        deps: ids of tasks that must complete before this one may start.
        kind: free-form label (``"map"``, ``"shuffle"``, ...) used by
            reports and the Gantt renderer.
        job: owning job label (multi-job workloads).
        release_time: earliest allowed start (e.g. job submission time).
    """

    task_id: str
    node: NodeId
    duration: float
    deps: FrozenSet[str] = frozenset()
    kind: str = "task"
    job: str = ""
    release_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ConfigError("task_id must be non-empty")
        if self.duration < 0:
            raise ConfigError(f"duration must be non-negative: {self.task_id}")
        if self.release_time < 0:
            raise ConfigError(f"release_time must be non-negative: {self.task_id}")
        if self.task_id in self.deps:
            raise ConfigError(f"task {self.task_id} depends on itself")


@dataclass
class TaskTimeline:
    """Realized schedule: per-task ``(start, end)`` plus derived views."""

    intervals: Dict[str, Tuple[float, float]]
    tasks: Dict[str, SimTask] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last task (0 for an empty timeline)."""
        return max((end for _s, end in self.intervals.values()), default=0.0)

    def start_of(self, task_id: str) -> float:
        return self.intervals[task_id][0]

    def end_of(self, task_id: str) -> float:
        return self.intervals[task_id][1]

    def job_span(self, job: str) -> Tuple[float, float]:
        """(first start, last end) over one job's tasks.

        Raises:
            ConfigError: when the job has no tasks in the timeline.
        """
        spans = [
            self.intervals[tid]
            for tid, task in self.tasks.items()
            if task.job == job
        ]
        if not spans:
            raise ConfigError(f"no tasks for job {job!r}")
        return min(s for s, _e in spans), max(e for _s, e in spans)

    def node_busy_time(self, node: NodeId) -> float:
        """Total slot-seconds consumed on ``node``."""
        return sum(
            end - start
            for tid, (start, end) in self.intervals.items()
            if self.tasks[tid].node == node
        )

    def by_kind(self, kind: str) -> List[str]:
        """Task ids of one kind, ordered by start time."""
        ids = [tid for tid, t in self.tasks.items() if t.kind == kind]
        return sorted(ids, key=lambda tid: self.intervals[tid][0])

    def utilization(self, nodes: Iterable[NodeId], slots_per_node: int) -> float:
        """Busy slot-seconds over available slot-seconds until the makespan."""
        if slots_per_node <= 0:
            raise ConfigError("slots_per_node must be positive")
        node_list = list(nodes)
        horizon = self.makespan
        if horizon == 0 or not node_list:
            return 0.0
        busy = sum(self.node_busy_time(n) for n in node_list)
        return busy / (horizon * len(node_list) * slots_per_node)
