"""Section II-B: the probability analysis of imbalanced workload."""

from .gamma_model import WorkloadModel, Fig2Point, fig2_curves
from .planner import (
    PlanningReport,
    max_cluster_for_imbalance,
    metadata_budget,
    plan,
    recommend_alpha,
)

__all__ = [
    "WorkloadModel",
    "Fig2Point",
    "fig2_curves",
    "PlanningReport",
    "max_cluster_for_imbalance",
    "metadata_budget",
    "plan",
    "recommend_alpha",
]
