"""The paper's Section II-B probability analysis, reproduced exactly.

Model: the amount of a sub-dataset in each block is
``X ~ Gamma(k, theta)``, i.i.d. across blocks.  A cluster of ``m`` nodes
splits ``n`` blocks evenly, so a node's workload is the sum of ``n/m``
independent Gammas:

    ``Z ~ Gamma(n*k/m, theta)``        (paper Eq. 2)

As ``m`` grows, ``n/m`` shrinks, the sum concentrates less, and the
probability of extreme per-node workloads rises — the paper's Figure 2.
With the running example (k=1.2, theta=7, n=512, m=128) the text derives
expected counts of 3.9 nodes below E(Z)/2, 1.5 below E(Z)/3 and 4.0 above
2·E(Z); :meth:`WorkloadModel.expected_nodes_below` /
:meth:`~WorkloadModel.expected_nodes_above` reproduce those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy import stats

from ..errors import ConfigError

__all__ = ["WorkloadModel", "Fig2Point", "fig2_curves"]


class WorkloadModel:
    """Gamma workload model over ``n`` blocks with per-block ``Γ(k, θ)``.

    Args:
        k: Gamma shape of the per-block sub-dataset amount.
        theta: Gamma scale.
        num_blocks: ``n``, total blocks holding the sub-dataset.
    """

    def __init__(self, k: float = 1.2, theta: float = 7.0, num_blocks: int = 512) -> None:
        if k <= 0 or theta <= 0:
            raise ConfigError("gamma parameters must be positive")
        if num_blocks <= 0:
            raise ConfigError("num_blocks must be positive")
        self.k = k
        self.theta = theta
        self.num_blocks = num_blocks

    # -- distributions ---------------------------------------------------------

    def _check_m(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")

    def node_distribution(self, num_nodes: int) -> stats.rv_continuous:
        """The frozen distribution of ``Z`` for an ``m``-node cluster (Eq. 2)."""
        self._check_m(num_nodes)
        shape = self.num_blocks * self.k / num_nodes
        return stats.gamma(a=shape, scale=self.theta)

    def expected_node_workload(self, num_nodes: int) -> float:
        """``E(Z) = n*k*theta / m`` — the fair share."""
        self._check_m(num_nodes)
        return self.num_blocks * self.k * self.theta / num_nodes

    def density(self, num_nodes: int, z: np.ndarray | float) -> np.ndarray:
        """Eq. 2's density ``f(z; nk/m, theta)`` (the Fig. 2 inset)."""
        return self.node_distribution(num_nodes).pdf(z)

    # -- tail probabilities (Eqs. 3-4) ------------------------------------------

    def prob_below(self, num_nodes: int, fraction: float) -> float:
        """``P(Z < fraction * E(Z))`` (Eq. 3 with w = fraction*E)."""
        if fraction <= 0:
            raise ConfigError("fraction must be positive")
        dist = self.node_distribution(num_nodes)
        return float(dist.cdf(fraction * self.expected_node_workload(num_nodes)))

    def prob_above(self, num_nodes: int, fraction: float) -> float:
        """``P(Z > fraction * E(Z))`` (Eq. 4)."""
        if fraction <= 0:
            raise ConfigError("fraction must be positive")
        dist = self.node_distribution(num_nodes)
        return float(dist.sf(fraction * self.expected_node_workload(num_nodes)))

    # -- expected extreme-node counts (the paper's 3.9 / 1.5 / 4.0) -----------------

    def expected_nodes_below(self, num_nodes: int, fraction: float) -> float:
        """``m * P(Z < fraction*E(Z))`` — expected under-loaded nodes."""
        return num_nodes * self.prob_below(num_nodes, fraction)

    def expected_nodes_above(self, num_nodes: int, fraction: float) -> float:
        """``m * P(Z > fraction*E(Z))`` — expected over-loaded nodes."""
        return num_nodes * self.prob_above(num_nodes, fraction)

    # -- empirical validation -----------------------------------------------------

    def sample_node_workloads(
        self, num_nodes: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Monte-Carlo draw: deal ``n`` Gamma blocks evenly onto ``m`` nodes.

        Unlike :meth:`node_distribution` this keeps the integer block
        partition (``n/m`` rounded), which is how the theory is validated
        against simulation in the tests.
        """
        self._check_m(num_nodes)
        weights = rng.gamma(self.k, self.theta, size=self.num_blocks)
        perm = rng.permutation(self.num_blocks)
        loads = np.zeros(num_nodes)
        for i, b in enumerate(perm):
            loads[i % num_nodes] += weights[b]
        return loads


@dataclass(frozen=True)
class Fig2Point:
    """One point of a Figure 2 curve."""

    num_nodes: int
    probability: float


def fig2_curves(
    model: WorkloadModel | None = None,
    cluster_sizes: Sequence[int] = tuple(range(2, 385, 2)),
) -> Dict[str, List[Fig2Point]]:
    """The four curves of Figure 2 (paper parameters by default).

    Returns ``{label: [Fig2Point, ...]}`` for
    ``P(Z < E/3)``, ``P(Z < E/2)``, ``P(Z > 2E)`` and ``P(Z > 3E)``.
    """
    m = model or WorkloadModel()
    curves: Dict[str, List[Fig2Point]] = {
        "P(Z < 1/3 E)": [],
        "P(Z < 1/2 E)": [],
        "P(Z > 2 E)": [],
        "P(Z > 3 E)": [],
    }
    for size in cluster_sizes:
        curves["P(Z < 1/3 E)"].append(Fig2Point(size, m.prob_below(size, 1 / 3)))
        curves["P(Z < 1/2 E)"].append(Fig2Point(size, m.prob_below(size, 1 / 2)))
        curves["P(Z > 2 E)"].append(Fig2Point(size, m.prob_above(size, 2.0)))
        curves["P(Z > 3 E)"].append(Fig2Point(size, m.prob_above(size, 3.0)))
    return curves
