"""Capacity planning on top of the Section II-B theory and Eq. 5.

Turns the paper's analysis into operator-facing answers:

* :func:`max_cluster_for_imbalance` — the largest cluster a workload can
  use before the *expected* number of badly over-loaded nodes (under stock
  scheduling) crosses a tolerance — i.e. when you start needing DataNet.
* :func:`recommend_alpha` — the smallest hash-map fraction whose Eq. 5
  metadata cost fits a memory budget, with the Fig. 10 guidance (≥ ~15 %)
  as a floor.
* :func:`metadata_budget` — total metadata bytes for a dataset shape at a
  given α (capacity planning for the master / metadata store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.elasticmap import MemoryModel
from ..errors import ConfigError
from .gamma_model import WorkloadModel

__all__ = [
    "max_cluster_for_imbalance",
    "recommend_alpha",
    "metadata_budget",
    "PlanningReport",
    "plan",
]


def max_cluster_for_imbalance(
    model: WorkloadModel,
    *,
    overload_factor: float = 2.0,
    expected_overloaded_nodes: float = 1.0,
    max_nodes: int = 4096,
) -> int:
    """Largest ``m`` with ``E[#nodes > overload_factor · E(Z)]`` ≤ tolerance.

    Monotone in ``m`` (Fig. 2), so a binary search suffices.  Returns
    ``max_nodes`` if even that size stays within tolerance.
    """
    if overload_factor <= 1.0:
        raise ConfigError("overload_factor must exceed 1.0")
    if expected_overloaded_nodes <= 0:
        raise ConfigError("expected_overloaded_nodes must be positive")
    if max_nodes < 1:
        raise ConfigError("max_nodes must be positive")

    def ok(m: int) -> bool:
        return (
            model.expected_nodes_above(m, overload_factor)
            <= expected_overloaded_nodes
        )

    if not ok(1):
        return 1
    lo, hi = 1, max_nodes
    if ok(hi):
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def metadata_budget(
    num_blocks: int,
    subdatasets_per_block: int,
    alpha: float,
    *,
    memory_model: Optional[MemoryModel] = None,
) -> float:
    """Total Eq. 5 metadata bytes for a dataset shape at fraction ``alpha``."""
    if num_blocks <= 0 or subdatasets_per_block <= 0:
        raise ConfigError("num_blocks and subdatasets_per_block must be positive")
    model = memory_model or MemoryModel()
    return num_blocks * model.cost_bits(subdatasets_per_block, alpha) / 8.0


def recommend_alpha(
    num_blocks: int,
    subdatasets_per_block: int,
    budget_bytes: float,
    *,
    memory_model: Optional[MemoryModel] = None,
    balance_floor: float = 0.15,
) -> float:
    """Largest α whose metadata fits ``budget_bytes``, floored at the
    Fig. 10 guidance (≈15 % suffices for balance).

    Raises:
        ConfigError: when even ``balance_floor`` does not fit the budget —
            the deployment needs more metadata memory (or a distributed
            store; see :mod:`repro.core.metastore`).
    """
    if budget_bytes <= 0:
        raise ConfigError("budget_bytes must be positive")
    if not (0.0 <= balance_floor <= 1.0):
        raise ConfigError("balance_floor must be in [0, 1]")
    model = memory_model or MemoryModel()
    floor_cost = metadata_budget(
        num_blocks, subdatasets_per_block, balance_floor, memory_model=model
    )
    if floor_cost > budget_bytes:
        raise ConfigError(
            f"budget {budget_bytes:.0f} B cannot hold even alpha="
            f"{balance_floor:.0%} ({floor_cost:.0f} B); use a distributed "
            "metadata store or raise the budget"
        )
    lo, hi = balance_floor, 1.0
    for _ in range(40):
        mid = (lo + hi) / 2
        cost = metadata_budget(
            num_blocks, subdatasets_per_block, mid, memory_model=model
        )
        if cost <= budget_bytes:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass
class PlanningReport:
    """One-shot capacity plan for a workload."""

    recommended_alpha: float
    metadata_bytes: float
    stock_safe_cluster: int  # largest m before stock scheduling degrades
    expected_overloaded_at_target: float

    def format(self) -> str:
        from ..metrics.reporting import format_kv
        from ..units import format_size

        return format_kv(
            {
                "recommended alpha": f"{self.recommended_alpha:.0%}",
                "metadata footprint": format_size(self.metadata_bytes),
                "stock scheduling safe up to": f"{self.stock_safe_cluster} nodes",
                "expected overloaded nodes at target": f"{self.expected_overloaded_at_target:.1f}",
            },
            title="Capacity plan",
        )


def plan(
    *,
    num_blocks: int,
    subdatasets_per_block: int,
    target_nodes: int,
    metadata_budget_bytes: float,
    gamma_k: float = 1.2,
    gamma_theta: float = 7.0,
    memory_model: Optional[MemoryModel] = None,
) -> PlanningReport:
    """Produce a full plan for a workload shape and target cluster size."""
    if target_nodes <= 0:
        raise ConfigError("target_nodes must be positive")
    model = WorkloadModel(k=gamma_k, theta=gamma_theta, num_blocks=num_blocks)
    alpha = recommend_alpha(
        num_blocks,
        subdatasets_per_block,
        metadata_budget_bytes,
        memory_model=memory_model,
    )
    return PlanningReport(
        recommended_alpha=alpha,
        metadata_bytes=metadata_budget(
            num_blocks, subdatasets_per_block, alpha, memory_model=memory_model
        ),
        stock_safe_cluster=max_cluster_for_imbalance(model),
        expected_overloaded_at_target=model.expected_nodes_above(
            target_nodes, 2.0
        ),
    )
