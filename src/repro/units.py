"""Byte-size units, parsing and formatting helpers.

The paper speaks in KB/MB block and bucket sizes (64 MB blocks, 1 kb..34 kb
buckets).  Internally everything in this library is plain integer *bytes*;
these helpers exist so configuration and reports stay readable.
"""

from __future__ import annotations

import functools
import re

from .errors import ConfigError

#: Number of bytes in one kibibyte/mebibyte/gibibyte (binary units, as HDFS uses).
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>b|kb|kib|mb|mib|gb|gib)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    None: 1,
    "b": 1,
    "kb": KiB,
    "kib": KiB,
    "mb": MiB,
    "mib": MiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size like ``"64 MB"`` or ``"1kb"`` into bytes.

    Integers and floats pass through (rounded to int).  Binary (1024-based)
    factors are used for all units, matching HDFS conventions.

    >>> parse_size("64 MB")
    67108864
    >>> parse_size(512)
    512

    Raises:
        ConfigError: if the string cannot be interpreted as a size.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text!r}")
        return int(round(text))
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigError(f"cannot parse size: {text!r}")
    num = float(m.group("num"))
    unit = m.group("unit")
    factor = _UNIT_FACTORS[unit.lower() if unit else None]
    return int(round(num * factor))


def format_size(num_bytes: int | float) -> str:
    """Format a byte count with a binary unit suffix, e.g. ``"64.0 MiB"``.

    >>> format_size(67108864)
    '64.0 MiB'
    """
    n = float(num_bytes)
    for unit, factor in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= factor:
            return f"{n / factor:.1f} {unit}"
    return f"{n:.0f} B"


@functools.lru_cache(maxsize=256)
def _fibonacci_boundaries_cached(base: int, count: int) -> tuple[int, ...]:
    if base <= 0:
        raise ConfigError(f"base must be positive, got {base}")
    if count <= 0:
        raise ConfigError(f"count must be positive, got {count}")
    out: list[int] = []
    a, b = 1, 2
    for _ in range(count):
        out.append(base * a)
        a, b = b, a + b
    return tuple(out)


def fibonacci_boundaries(base: int, count: int) -> list[int]:
    """Return ``count`` increasing Fibonacci-scaled boundaries ``base*F_i``.

    The paper's bucket series ``1kb, 2kb, 3kb, 5kb, 8kb, 13kb, 21kb, 34kb``
    is ``fibonacci_boundaries(1024, 8)``.  Results are memoized: the same
    series is requested once per block during metadata construction, so
    repeat calls must not recompute it.

    Raises:
        ConfigError: for a non-positive base or count.
    """
    return list(_fibonacci_boundaries_cached(base, count))
