"""Synthetic workload generators.

The paper evaluates on (a) a MovieLens/MovieTweetings-derived movie review
log with randomly generated review text, stored chronologically, and (b)
GitHub Archive event logs.  Neither raw testbed dataset ships with the
paper, so these generators synthesize streams from the same statistical
families the paper itself uses to describe them:

- :mod:`repro.workloads.movielens` — Zipf movie popularity, per-movie
  review times Gamma-distributed after release (the paper's content
  clustering model, Section II-B).
- :mod:`repro.workloads.github_events` — ~20 event types at stationary
  but unequal rates: uneven distribution *without* temporal clustering
  (the Fig. 8 regime).
- :mod:`repro.workloads.worldcup` — WorldCup'98-style access logs with
  bursts around match kickoffs (a third clustering shape, used in extra
  benches).
- :mod:`repro.workloads.text` — review-text/payload generation.
- :mod:`repro.workloads.clustering` — arrival-time models shared by the
  generators.
"""

from .text import TextGenerator
from .clustering import (
    ArrivalModel,
    GammaArrivalModel,
    UniformArrivalModel,
    BurstArrivalModel,
    zipf_weights,
)
from .movielens import MovieLensGenerator, most_popular
from .github_events import GitHubEventsGenerator, GITHUB_EVENT_TYPES
from .worldcup import WorldCupGenerator
from .mixer import interleave, namespace

__all__ = [
    "TextGenerator",
    "ArrivalModel",
    "GammaArrivalModel",
    "UniformArrivalModel",
    "BurstArrivalModel",
    "zipf_weights",
    "MovieLensGenerator",
    "most_popular",
    "GitHubEventsGenerator",
    "GITHUB_EVENT_TYPES",
    "WorldCupGenerator",
    "interleave",
    "namespace",
]
