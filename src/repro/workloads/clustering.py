"""Arrival-time (content clustering) models.

Section II-B of the paper models the per-block amount of a sub-dataset as
Gamma-distributed, motivated by event interest decaying after a release.
These models generate the *record arrival times* that produce exactly that
behaviour once records are stored chronologically in fixed-size blocks:

- :class:`GammaArrivalModel` — offsets after an anchor (a movie release)
  follow Γ(k, θ); most records land shortly after the anchor — the paper's
  content-clustering regime.
- :class:`UniformArrivalModel` — stationary arrivals over the dataset's
  lifetime — the GitHub-events regime (Fig. 8: imbalance without temporal
  clustering).
- :class:`BurstArrivalModel` — Gaussian bursts around an anchor (WorldCup
  match kickoffs).

:func:`zipf_weights` provides the popularity skew that decides how *many*
records each sub-dataset gets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ArrivalModel",
    "GammaArrivalModel",
    "UniformArrivalModel",
    "BurstArrivalModel",
    "zipf_weights",
]


def zipf_weights(num_items: int, s: float = 1.1) -> np.ndarray:
    """Normalized Zipf popularity weights for ``num_items`` ranked items.

    Rank 1 is the most popular; ``s`` controls skew (larger = more skew).

    Raises:
        ConfigError: non-positive ``num_items`` or negative ``s``.
    """
    if num_items <= 0:
        raise ConfigError("num_items must be positive")
    if s < 0:
        raise ConfigError("zipf exponent must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


class ArrivalModel(ABC):
    """Generates record arrival times for one sub-dataset."""

    @abstractmethod
    def sample(
        self, anchor: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``count`` arrival times for a sub-dataset anchored at ``anchor``.

        Times are floats in dataset time units (days, by convention) and
        may fall outside the dataset window when the anchor is near an
        edge — generators filter to their window rather than clamping,
        which would pile records up at the boundary.
        """

    def mean_offset(self) -> float:
        """Expected arrival offset after the anchor (0 for anchor-free
        models); used by generators to size their release burn-in."""
        return 0.0


class GammaArrivalModel(ArrivalModel):
    """Arrivals at ``anchor + Γ(k, θ)`` offsets — the paper's model.

    With the paper's running parameters ``k=1.2, θ=7`` (days), ~80 % of a
    movie's reviews fall within a month of release, matching Figure 1(a)'s
    concentration of one sub-dataset into a few chronological blocks.
    """

    def __init__(self, k: float = 1.2, theta: float = 7.0) -> None:
        if k <= 0 or theta <= 0:
            raise ConfigError("gamma parameters must be positive")
        self.k = k
        self.theta = theta

    def mean_offset(self) -> float:
        """``k * theta`` — the Gamma mean."""
        return self.k * self.theta

    def sample(self, anchor: float, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigError("count must be non-negative")
        offsets = rng.gamma(self.k, self.theta, size=count)
        return anchor + offsets


class UniformArrivalModel(ArrivalModel):
    """Stationary arrivals over ``[0, duration)`` — no temporal clustering."""

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ConfigError("duration must be positive")
        self.duration = duration

    def sample(self, anchor: float, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigError("count must be non-negative")
        return rng.uniform(0.0, self.duration, size=count)


class BurstArrivalModel(ArrivalModel):
    """Gaussian burst around the anchor (e.g. a match kickoff).

    ``sigma`` controls burst width; times are clipped at 0.
    """

    def __init__(self, sigma: float = 0.25) -> None:
        if sigma <= 0:
            raise ConfigError("sigma must be positive")
        self.sigma = sigma

    def sample(self, anchor: float, count: int, rng: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigError("count must be non-negative")
        return rng.normal(anchor, self.sigma, size=count)
