"""Synthetic GitHub Archive event log (paper Section V-A.4, Figure 8).

The paper's secondary dataset "provide[s] more than 20 event types ranging
from new commits and fork events to opening new tickets, commenting, and
adding members".  The key property (Fig. 8a): the per-block distribution of
a sub-dataset like ``IssuesEvent`` is *uneven* yet shows no content
clustering — event rates are roughly stationary in time, just unequal
across types and noisy across blocks.

The generator therefore draws event types i.i.d. per record from an
empirically shaped rate table (Push dominates, watch/create follow, the
tail is thin) and arrival times uniformly over the dataset lifetime, with
per-type rate noise over time to produce the jagged-but-unclustered shape
of Fig. 8(a).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..hdfs.records import Record
from .text import TextGenerator

__all__ = ["GitHubEventsGenerator", "GITHUB_EVENT_TYPES"]

#: The >20 public GitHub event types with rough relative rates (Push-heavy,
#: long thin tail), shaped after the public GH Archive distribution.
GITHUB_EVENT_TYPES: tuple = (
    ("PushEvent", 0.50),
    ("CreateEvent", 0.11),
    ("WatchEvent", 0.08),
    ("IssueCommentEvent", 0.07),
    ("PullRequestEvent", 0.05),
    ("IssuesEvent", 0.04),
    ("ForkEvent", 0.035),
    ("DeleteEvent", 0.025),
    ("PullRequestReviewCommentEvent", 0.02),
    ("GollumEvent", 0.012),
    ("CommitCommentEvent", 0.010),
    ("ReleaseEvent", 0.008),
    ("MemberEvent", 0.006),
    ("PublicEvent", 0.004),
    ("TeamAddEvent", 0.003),
    ("StatusEvent", 0.003),
    ("DeploymentEvent", 0.002),
    ("DeploymentStatusEvent", 0.002),
    ("LabelEvent", 0.002),
    ("MilestoneEvent", 0.001),
    ("ProjectEvent", 0.001),
    ("OrgBlockEvent", 0.001),
)


class GitHubEventsGenerator:
    """Generates a chronological multi-type event stream without clustering.

    Args:
        total_events: record count.
        duration_days: dataset lifetime; arrivals are uniform over it.
        event_types: ``(name, relative_rate)`` pairs; defaults to
            :data:`GITHUB_EVENT_TYPES`.
        rate_noise: per-day lognormal sigma applied to each type's rate so
            blocks differ (Fig. 8a jaggedness) without systematic
            clustering.  0 disables the noise.
        text: payload generator.
        rng: seeded generator.
    """

    def __init__(
        self,
        total_events: int = 100_000,
        *,
        duration_days: float = 30.0,
        event_types: Optional[Sequence] = None,
        rate_noise: float = 1.0,
        text: Optional[TextGenerator] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if total_events < 0:
            raise ConfigError("total_events must be non-negative")
        if duration_days <= 0:
            raise ConfigError("duration_days must be positive")
        if rate_noise < 0:
            raise ConfigError("rate_noise must be non-negative")
        types = list(event_types if event_types is not None else GITHUB_EVENT_TYPES)
        if not types:
            raise ConfigError("event_types must be non-empty")
        self.names = [t[0] for t in types]
        rates = np.array([t[1] for t in types], dtype=np.float64)
        if (rates <= 0).any():
            raise ConfigError("event rates must be positive")
        self._rates = rates / rates.sum()
        self.total_events = total_events
        self.duration_days = duration_days
        self.rate_noise = rate_noise
        self.rng = rng if rng is not None else np.random.default_rng()
        self.text = text or TextGenerator(rng=self.rng)

    @property
    def event_names(self) -> List[str]:
        """All event type names."""
        return list(self.names)

    def generate(self) -> List[Record]:
        """The full chronological event stream."""
        n = self.total_events
        if n == 0:
            return []
        times = np.sort(self.rng.uniform(0.0, self.duration_days, size=n))
        if self.rate_noise > 0:
            # Daily multiplicative noise per event type: block-to-block
            # variation without temporal clustering.
            num_days = int(np.ceil(self.duration_days)) or 1
            noise = self.rng.lognormal(
                0.0, self.rate_noise, size=(num_days, len(self.names))
            )
            day_idx = np.minimum(times.astype(np.int64), num_days - 1)
            probs = self._rates[None, :] * noise[day_idx]
            probs /= probs.sum(axis=1, keepdims=True)
            cum = np.cumsum(probs, axis=1)
            u = self.rng.uniform(size=n)
            type_idx = (u[:, None] > cum).sum(axis=1)
        else:
            type_idx = self.rng.choice(len(self.names), size=n, p=self._rates)
        bodies = self.text.sentences(n)
        return [
            Record(
                sub_id=self.names[int(type_idx[i])],
                timestamp=float(times[i]),
                payload=bodies[i],
            )
            for i in range(n)
        ]
