"""Combine workload streams into one chronological log.

Production clusters rarely store one clean dataset: click streams, build
events and request logs land in the same ingest pipeline.  The mixer
merges independently generated streams by timestamp (preserving each
stream's internal order) and can namespace sub-dataset ids so sources
don't collide — letting experiments study a sub-dataset's balance when it
shares blocks with unrelated traffic.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence

from ..errors import ConfigError
from ..hdfs.records import Record

__all__ = ["interleave", "namespace"]


def namespace(records: Iterable[Record], prefix: str) -> List[Record]:
    """Prefix every record's sub-dataset id with ``prefix/``.

    >>> [r.sub_id for r in namespace([Record("m1", 0.0)], "movies")]
    ['movies/m1']
    """
    if not prefix:
        raise ConfigError("prefix must be non-empty")
    return [
        Record(
            sub_id=f"{prefix}/{r.sub_id}",
            timestamp=r.timestamp,
            payload=r.payload,
        )
        for r in records
    ]


def interleave(*streams: Sequence[Record]) -> List[Record]:
    """Merge chronological record streams into one chronological stream.

    A k-way merge by timestamp: each input must already be sorted (the
    generators produce sorted streams), and ties preserve stream order.

    Raises:
        ConfigError: when no stream is given or an input is unsorted.
    """
    if not streams:
        raise ConfigError("interleave requires at least one stream")
    for i, stream in enumerate(streams):
        for a, b in zip(stream, stream[1:]):
            if a.timestamp > b.timestamp:
                raise ConfigError(f"stream {i} is not chronologically sorted")
    merged: List[Record] = []
    heap = [
        (stream[0].timestamp, idx, 0)
        for idx, stream in enumerate(streams)
        if stream
    ]
    heapq.heapify(heap)
    while heap:
        _ts, idx, pos = heapq.heappop(heap)
        merged.append(streams[idx][pos])
        if pos + 1 < len(streams[idx]):
            heapq.heappush(heap, (streams[idx][pos + 1].timestamp, idx, pos + 1))
    return merged
