"""Synthetic MovieLens/MovieTweetings-style movie review log.

Reproduces the structure the paper's main experiments rely on (Section V):
"a dataset consisting of movie ratings and reviews stored in chronological
order ... based on the distribution of the movie names, ratings and
categories of MovieLens.  The text reviews are randomly generated".

Model:

* ``num_movies`` movies; review counts follow Zipf popularity.
* Each movie is released uniformly over the dataset lifetime; its reviews
  arrive at Gamma(k, θ)-distributed offsets after release (content
  clustering, paper Section II-B).
* Records are sorted by timestamp before storage — chronological order is
  what turns temporal clustering into *block* clustering.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional

import numpy as np

from ..errors import ConfigError
from ..hdfs.records import Record
from .clustering import ArrivalModel, GammaArrivalModel, zipf_weights
from .text import TextGenerator

__all__ = ["MovieLensGenerator", "most_popular"]


def most_popular(records: Iterable[Record], rank: int = 0) -> str:
    """The ``rank``-th most reviewed sub-dataset id in a record stream.

    The paper's experiments analyze "a certain movie" with a large review
    count; rank 0 (the most popular) is the natural stand-in.
    """
    counts = Counter(r.sub_id for r in records)
    if rank >= len(counts):
        raise ConfigError(f"rank {rank} out of range for {len(counts)} sub-datasets")
    return counts.most_common()[rank][0]


class MovieLensGenerator:
    """Generates a chronological, content-clustered movie review stream.

    Args:
        num_movies: distinct movies (sub-datasets).
        total_reviews: total records across all movies.
        duration_days: dataset lifetime; releases are uniform over
            ``[0, 0.8 * duration_days]`` so late releases still get their
            review tail inside the dataset.
        zipf_s: popularity skew across movies.
        arrival: per-movie arrival model; default Γ(k=1.2, θ=7) days — the
            parameters of the paper's Section II-B analysis.
        text: payload generator (review bodies).
        rating_levels: ratings sampled uniformly from this tuple and
            prefixed to the payload, mimicking MovieLens records.
        rng: seeded generator for deterministic streams.
    """

    def __init__(
        self,
        num_movies: int = 1000,
        total_reviews: int = 100_000,
        *,
        duration_days: float = 365.0,
        zipf_s: float = 1.1,
        arrival: Optional[ArrivalModel] = None,
        text: Optional[TextGenerator] = None,
        rating_levels: tuple = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_movies <= 0:
            raise ConfigError("num_movies must be positive")
        if total_reviews < 0:
            raise ConfigError("total_reviews must be non-negative")
        if duration_days <= 0:
            raise ConfigError("duration_days must be positive")
        if not rating_levels:
            raise ConfigError("rating_levels must be non-empty")
        self.num_movies = num_movies
        self.total_reviews = total_reviews
        self.duration_days = duration_days
        self.zipf_s = zipf_s
        self.rng = rng if rng is not None else np.random.default_rng()
        self.arrival = arrival or GammaArrivalModel(k=1.2, theta=7.0)
        self.text = text or TextGenerator(rng=self.rng)
        self.rating_levels = rating_levels

    def movie_id(self, index: int) -> str:
        """Canonical sub-dataset id of the ``index``-th movie."""
        return f"movie-{index:05d}"

    def review_counts(self) -> np.ndarray:
        """Number of reviews per movie (multinomial over Zipf weights)."""
        weights = zipf_weights(self.num_movies, self.zipf_s)
        return self.rng.multinomial(self.total_reviews, weights)

    def generate(self) -> List[Record]:
        """The full chronological record stream.

        Releases are drawn from a *steady-state* window: they start a
        burn-in period before the dataset's time zero (records landing
        outside ``[0, duration_days]`` are dropped), so the earliest
        blocks already mix many movies.  Without the burn-in, the first
        few released movies would own the first blocks outright — a
        start-up artifact, not content clustering.
        """
        counts = self.review_counts()
        burnin = 3.0 * self.arrival.mean_offset()
        releases = self.rng.uniform(
            -burnin, 0.8 * self.duration_days, size=self.num_movies
        )
        sids: List[str] = []
        times_parts: List[np.ndarray] = []
        for m in range(self.num_movies):
            n = int(counts[m])
            if n == 0:
                continue
            times = self.arrival.sample(float(releases[m]), n, self.rng)
            times = times[(times >= 0.0) & (times <= self.duration_days)]
            if times.size == 0:
                continue
            times_parts.append(times)
            sids.extend([self.movie_id(m)] * times.size)
        if not times_parts:
            return []
        all_times = np.concatenate(times_parts)
        ratings = self.rng.choice(self.rating_levels, size=all_times.size)
        bodies = self.text.sentences(all_times.size)
        order = np.argsort(all_times, kind="stable")
        return [
            Record(
                sub_id=sids[i],
                timestamp=float(all_times[i]),
                payload=f"{ratings[i]:.1f} {bodies[i]}",
            )
            for i in order
        ]
