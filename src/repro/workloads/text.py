"""Synthetic record payload text.

The paper states "the text reviews are randomly generated"; WordCount and
Aggregate Word Histogram still need realistic word-frequency structure, so
payloads are sentences drawn from a fixed vocabulary with Zipf-distributed
word frequencies (natural language's empirical distribution).

Generation is vectorized: a pool of sentences is pre-sampled once and
records draw from the pool, keeping multi-hundred-thousand-record
workloads fast while preserving word statistics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError

__all__ = ["TextGenerator", "BASE_VOCABULARY"]

#: Seed vocabulary; extended with synthetic tokens when a larger one is asked for.
BASE_VOCABULARY: tuple = (
    "the", "movie", "film", "great", "bad", "plot", "acting", "scene", "story",
    "character", "director", "love", "hate", "watch", "time", "good", "best",
    "worst", "amazing", "boring", "funny", "action", "drama", "comedy", "score",
    "music", "visual", "effects", "cast", "role", "performance", "ending",
    "twist", "classic", "sequel", "original", "remake", "series", "episode",
    "season", "star", "award", "oscar", "review", "rating", "cinema", "screen",
    "ticket", "popcorn", "theater", "release", "premiere", "trailer", "studio",
    "budget", "box", "office", "hit", "flop", "masterpiece", "disaster",
    "beautiful", "terrible", "wonderful", "awful", "brilliant", "dull",
    "exciting", "slow", "fast", "long", "short", "deep", "shallow", "dark",
    "light", "emotional", "cold", "warm", "real", "fake", "true", "false",
)


class TextGenerator:
    """Zipf-weighted sentence generator over a fixed vocabulary.

    Args:
        vocab_size: number of distinct words (extends the base vocabulary
            with ``tok<N>`` tokens when larger than it).
        zipf_s: Zipf exponent for word frequencies (~1.0 for natural text).
        pool_size: number of pre-generated sentences records sample from.
        words_per_sentence: (low, high) uniform range of sentence length.
        rng: NumPy generator (seed it for determinism).
    """

    def __init__(
        self,
        *,
        vocab_size: int = 200,
        zipf_s: float = 1.05,
        pool_size: int = 512,
        words_per_sentence: tuple = (6, 24),
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size <= 0:
            raise ConfigError("vocab_size must be positive")
        if pool_size <= 0:
            raise ConfigError("pool_size must be positive")
        lo, hi = words_per_sentence
        if not (0 < lo <= hi):
            raise ConfigError("words_per_sentence must satisfy 0 < low <= high")
        self.rng = rng if rng is not None else np.random.default_rng()
        vocab = list(BASE_VOCABULARY)
        while len(vocab) < vocab_size:
            vocab.append(f"tok{len(vocab):04d}")
        self.vocabulary: List[str] = vocab[:vocab_size]
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        self._probs = weights / weights.sum()
        self._pool: List[str] = [
            self._fresh_sentence(lo, hi) for _ in range(pool_size)
        ]

    def _fresh_sentence(self, lo: int, hi: int) -> str:
        n = int(self.rng.integers(lo, hi + 1))
        idx = self.rng.choice(len(self.vocabulary), size=n, p=self._probs)
        return " ".join(self.vocabulary[i] for i in idx)

    def sentence(self) -> str:
        """One sentence sampled from the pre-generated pool."""
        return self._pool[int(self.rng.integers(len(self._pool)))]

    def sentences(self, count: int) -> List[str]:
        """``count`` sentences, pool-sampled (fast path for bulk generation)."""
        if count < 0:
            raise ConfigError("count must be non-negative")
        idx = self.rng.integers(0, len(self._pool), size=count)
        return [self._pool[i] for i in idx]
