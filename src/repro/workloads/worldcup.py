"""Synthetic WorldCup'98-style access log (paper reference [3]).

The paper cites the World Cup 1998 HTTP trace as a canonical sub-dataset
workload.  This generator models it as per-match request bursts: each
match is a sub-dataset whose requests cluster tightly around kickoff —
an even sharper clustering shape than the movie workload, useful for
stress benches and ablations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..hdfs.records import Record
from .clustering import BurstArrivalModel, zipf_weights
from .text import TextGenerator

__all__ = ["WorldCupGenerator"]


class WorldCupGenerator:
    """Generates a chronological HTTP-access-style log with match bursts.

    Args:
        num_matches: distinct matches (sub-datasets).
        total_requests: record count across all matches.
        duration_days: tournament length; kickoffs are uniform over it.
        burst_sigma_days: width of each match's request burst.
        zipf_s: popularity skew across matches (finals draw more traffic).
        background_fraction: fraction of each match's requests arriving
            uniformly over the tournament (site browsing noise).
        text: payload generator (request path + agent strings stand-in).
        rng: seeded generator.
    """

    def __init__(
        self,
        num_matches: int = 64,
        total_requests: int = 50_000,
        *,
        duration_days: float = 33.0,
        burst_sigma_days: float = 0.2,
        zipf_s: float = 0.9,
        background_fraction: float = 0.1,
        text: Optional[TextGenerator] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_matches <= 0:
            raise ConfigError("num_matches must be positive")
        if total_requests < 0:
            raise ConfigError("total_requests must be non-negative")
        if duration_days <= 0:
            raise ConfigError("duration_days must be positive")
        if not (0.0 <= background_fraction <= 1.0):
            raise ConfigError("background_fraction must be in [0, 1]")
        self.num_matches = num_matches
        self.total_requests = total_requests
        self.duration_days = duration_days
        self.zipf_s = zipf_s
        self.background_fraction = background_fraction
        self.rng = rng if rng is not None else np.random.default_rng()
        self.burst = BurstArrivalModel(sigma=burst_sigma_days)
        self.text = text or TextGenerator(rng=self.rng)

    def match_id(self, index: int) -> str:
        """Canonical sub-dataset id of the ``index``-th match."""
        return f"match-{index:03d}"

    def generate(self) -> List[Record]:
        """The full chronological request stream."""
        if self.total_requests == 0:
            return []
        weights = zipf_weights(self.num_matches, self.zipf_s)
        counts = self.rng.multinomial(self.total_requests, weights)
        kickoffs = self.rng.uniform(0.0, self.duration_days, size=self.num_matches)
        sids: List[str] = []
        parts: List[np.ndarray] = []
        for m in range(self.num_matches):
            n = int(counts[m])
            if n == 0:
                continue
            n_bg = int(round(n * self.background_fraction))
            n_burst = n - n_bg
            times = [self.burst.sample(float(kickoffs[m]), n_burst, self.rng)]
            if n_bg:
                times.append(self.rng.uniform(0.0, self.duration_days, size=n_bg))
            t = np.concatenate(times)
            t = t[(t >= 0.0) & (t <= self.duration_days)]
            if t.size == 0:
                continue
            parts.append(t)
            sids.extend([self.match_id(m)] * t.size)
        if not parts:
            return []
        all_times = np.concatenate(parts)
        bodies = self.text.sentences(all_times.size)
        order = np.argsort(all_times, kind="stable")
        return [
            Record(sub_id=sids[i], timestamp=float(all_times[i]), payload=bodies[i])
            for i in order
        ]
