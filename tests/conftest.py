"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HDFSCluster, Record


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; reseeded per test."""
    return np.random.default_rng(20160523)  # IPDPS 2016 conference date


@pytest.fixture
def small_cluster(rng) -> HDFSCluster:
    """An 8-node cluster with tiny blocks for fast tests."""
    return HDFSCluster(num_nodes=8, block_size=4096, replication=3, rng=rng)


def make_records(spec: dict[str, int], payload_len: int = 40) -> list[Record]:
    """Build ``count`` records per sub-dataset id, interleaved chronologically.

    ``spec`` maps sub-dataset id -> record count.
    """
    out: list[Record] = []
    t = 0.0
    remaining = dict(spec)
    while any(v > 0 for v in remaining.values()):
        for sid in list(remaining):
            if remaining[sid] > 0:
                out.append(Record(sid, t, "x" * payload_len))
                remaining[sid] -= 1
                t += 1.0
    return out


@pytest.fixture
def clustered_records() -> list[Record]:
    """Records where sub-dataset 'hot' is concentrated early (content clustering)."""
    recs: list[Record] = []
    t = 0.0
    for i in range(300):
        recs.append(Record("hot", t, "h" * 60))
        t += 1.0
    for i in range(300):
        sid = f"cold-{i % 30}"
        recs.append(Record(sid, t, "c" * 60))
        t += 1.0
    return recs
