"""Tests for aggregation-transfer planning (future-work feature)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    plan_greedy,
    plan_optimal,
    transfer_bytes,
)
from repro.errors import ConfigError


def _volumes():
    # node -> reducer -> bytes; reducer 0's data mostly on node "a", etc.
    return {
        "a": {0: 900, 1: 50, 2: 10},
        "b": {0: 50, 1: 800, 2: 40},
        "c": {0: 30, 1: 60, 2: 700},
    }


class TestTransferBytes:
    def test_perfect_colocation(self):
        placement = {0: "a", 1: "b", 2: "c"}
        assert transfer_bytes(_volumes(), placement) == 50 + 10 + 50 + 40 + 30 + 60

    def test_worst_case_fetches_everything_not_local(self):
        placement = {0: "c", 1: "c", 2: "c"}
        vols = _volumes()
        total = sum(v for parts in vols.values() for v in parts.values())
        on_c = sum(vols["c"].values())
        assert transfer_bytes(vols, placement) == total - on_c

    def test_missing_reducer_rejected(self):
        with pytest.raises(ConfigError):
            transfer_bytes(_volumes(), {0: "a"})

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigError):
            transfer_bytes({"a": {0: -1}}, {0: "a"})

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            transfer_bytes({}, {})
        with pytest.raises(ConfigError):
            transfer_bytes({"a": {}}, {})


class TestGreedyPlan:
    def test_finds_obvious_colocation(self):
        plan = plan_greedy(_volumes())
        assert plan.placement == {0: "a", 1: "b", 2: "c"}
        assert plan.saved_bytes == 900 + 800 + 700
        assert plan.saved_fraction > 0.8

    def test_respects_slot_cap(self):
        vols = {"a": {0: 100, 1: 100}, "b": {0: 1, 1: 1}}
        plan = plan_greedy(vols, max_reducers_per_node=1)
        assert sorted(plan.placement.values()) == ["a", "b"]

    def test_insufficient_slots_raises(self):
        vols = {"a": {0: 5, 1: 5, 2: 5}}
        with pytest.raises(ConfigError):
            plan_greedy(vols, max_reducers_per_node=2)

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigError):
            plan_greedy(_volumes(), max_reducers_per_node=0)

    def test_never_worse_than_baseline(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            vols = {
                f"n{i}": {r: int(rng.integers(0, 1000)) for r in range(6)}
                for i in range(4)
            }
            plan = plan_greedy(vols)
            assert plan.transfer <= plan.baseline_transfer


class TestOptimalPlan:
    def test_matches_greedy_on_separable_input(self):
        greedy = plan_greedy(_volumes())
        optimal = plan_optimal(_volumes())
        assert optimal.transfer <= greedy.transfer

    def test_spreads_when_more_reducers_than_nodes(self):
        vols = {
            "a": {0: 100, 1: 90, 2: 80, 3: 70},
            "b": {0: 10, 1: 10, 2: 10, 3: 10},
        }
        plan = plan_optimal(vols)
        counts = {}
        for node in plan.placement.values():
            counts[node] = counts.get(node, 0) + 1
        assert max(counts.values()) <= 2  # ceil(4/2)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_optimal_no_worse_than_capped_greedy(self, seed):
        """Under the same per-node slot cap, the Hungarian plan never moves
        more bytes than the greedy plan (it is optimal for that cap)."""
        rng = np.random.default_rng(seed)
        vols = {
            f"n{i}": {r: int(rng.integers(0, 500)) for r in range(5)}
            for i in range(3)
        }
        if sum(v for p in vols.values() for v in p.values()) == 0:
            return
        cap = -(-5 // 3)  # ceil(R/N), the cap plan_optimal enforces
        greedy = plan_greedy(vols, max_reducers_per_node=cap)
        optimal = plan_optimal(vols)
        assert optimal.transfer <= greedy.transfer + 1e-9

    def test_saved_fraction_zero_when_no_data(self):
        vols = {"a": {0: 0}}
        plan = plan_optimal(vols)
        assert plan.saved_fraction == 0.0
