"""Correctness tests for the MapReduce applications (real execution)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hdfs import Record
from repro.mapreduce.apps import (
    grep_job,
    histogram_job,
    jaccard_similarity,
    moving_average_job,
    parse_rating,
    tokenize,
    top_k_search_job,
    word_count_job,
)


def _run_locally(job, records):
    """Execute a job's map/combine/reduce chain without the engine."""
    emitted = {}
    for r in records:
        for k, v in job.run_mapper(r):
            emitted.setdefault(k, []).append(v)
    combined = {}
    for k, values in emitted.items():
        for ck, cv in job.run_combiner(k, values):
            combined.setdefault(ck, []).append(cv)
    output = {}
    for k, values in combined.items():
        for ok, ov in job.run_reducer(k, values):
            output[ok] = ov
    return output


class TestParseRating:
    def test_leading_float(self):
        assert parse_rating("4.5 nice film") == 4.5

    def test_no_rating(self):
        assert parse_rating("just words") == 0.0

    def test_empty(self):
        assert parse_rating("") == 0.0


class TestMovingAverage:
    def test_window_means(self):
        recs = [
            Record("m", 0.0, "4.0 a"),
            Record("m", 1.0, "2.0 b"),
            Record("m", 10.0, "5.0 c"),
        ]
        out = _run_locally(moving_average_job(window_days=7.0), recs)
        assert out[0] == (pytest.approx(3.0), 2)
        assert out[1] == (pytest.approx(5.0), 1)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            moving_average_job(window_days=0)

    def test_single_record(self):
        out = _run_locally(moving_average_job(), [Record("m", 0.0, "3.5 x")])
        assert out[0] == (pytest.approx(3.5), 1)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Great Movie") == ["great", "movie"]

    def test_drops_leading_number(self):
        assert tokenize("4.5 good") == ["good"]

    def test_empty(self):
        assert tokenize("") == []


class TestWordCount:
    def test_counts(self):
        recs = [Record("m", 0.0, "good good bad"), Record("m", 1.0, "good")]
        out = _run_locally(word_count_job(), recs)
        assert out["good"] == 3
        assert out["bad"] == 1

    def test_matches_naive_count(self, clustered_records):
        out = _run_locally(word_count_job(), clustered_records)
        naive = {}
        for r in clustered_records:
            for w in tokenize(r.payload):
                naive[w] = naive.get(w, 0) + 1
        assert out == naive


class TestHistogram:
    def test_stats_per_length(self):
        recs = [Record("m", 0.0, "ab abc ab")]
        out = _run_locally(histogram_job(), recs)
        count, vmin, vmax, mean = out[2]
        assert count == 2 and vmin == 2 and vmax == 2 and mean == 2.0
        assert out[3][0] == 1

    def test_total_count_matches_words(self):
        recs = [Record("m", float(i), "one two three four") for i in range(5)]
        out = _run_locally(histogram_job(), recs)
        assert sum(v[0] for v in out.values()) == 20


class TestTopKSearch:
    def test_jaccard(self):
        a = frozenset({"x", "y"})
        b = frozenset({"y", "z"})
        assert jaccard_similarity(a, b) == pytest.approx(1 / 3)
        assert jaccard_similarity(a, a) == 1.0
        assert jaccard_similarity(frozenset(), frozenset()) == 0.0

    def test_finds_most_similar(self):
        recs = [
            Record("m", 0.0, "alpha beta gamma"),
            Record("m", 1.0, "alpha beta"),
            Record("m", 2.0, "unrelated words here"),
        ]
        out = _run_locally(top_k_search_job("alpha beta gamma", k=2), recs)
        top = out["topk"]
        assert len(top) == 2
        assert top[0][0] == pytest.approx(1.0)  # exact match first
        assert top[0][1].startswith("m@0.000")

    def test_k_bounds_results(self):
        recs = [Record("m", float(i), f"word{i}") for i in range(10)]
        out = _run_locally(top_k_search_job("word0", k=3), recs)
        assert len(out["topk"]) == 3

    def test_sorted_descending(self):
        recs = [Record("m", float(i), "a " * (i + 1)) for i in range(5)]
        out = _run_locally(top_k_search_job("a b c", k=5), recs)
        sims = [s for s, _tag in out["topk"]]
        assert sims == sorted(sims, reverse=True)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            top_k_search_job("q", k=0)


class TestGrep:
    def test_counts_matches(self):
        recs = [
            Record("m", 0.0, "hello world"),
            Record("m", 1.0, "goodbye world"),
            Record("m", 2.0, "nothing"),
        ]
        out = _run_locally(grep_job("world"), recs)
        assert out["world"] == 2

    def test_regex(self):
        recs = [Record("m", 0.0, "cat"), Record("m", 1.0, "car")]
        out = _run_locally(grep_job("ca[tr]"), recs)
        assert out["ca[tr]"] == 2

    def test_no_match_empty_output(self):
        out = _run_locally(grep_job("zzz"), [Record("m", 0.0, "abc")])
        assert out == {}

    def test_rejects_bad_pattern(self):
        with pytest.raises(ConfigError):
            grep_job("([unclosed")


class TestJobValidation:
    def test_partition_stable_and_in_range(self):
        job = word_count_job(num_reducers=5)
        for key in ("alpha", "beta", 42, ("tuple", 1)):
            r = job.partition(key)
            assert 0 <= r < 5
            assert job.partition(key) == r  # stable

    def test_mapper_errors_wrapped(self):
        from repro.errors import JobError
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.costmodel import PROFILES

        def bad_mapper(record):
            raise ValueError("boom")

        job = MapReduceJob(
            name="bad",
            mapper=bad_mapper,
            reducer=lambda k, v: [(k, v)],
            profile=PROFILES["grep"],
        )
        with pytest.raises(JobError):
            job.run_mapper(Record("m", 0.0, "x"))

    def test_job_config_validation(self):
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.costmodel import PROFILES

        with pytest.raises(ConfigError):
            MapReduceJob(
                name="",
                mapper=lambda r: [],
                reducer=lambda k, v: [],
                profile=PROFILES["grep"],
            )
        with pytest.raises(ConfigError):
            MapReduceJob(
                name="x",
                mapper=lambda r: [],
                reducer=lambda k, v: [],
                profile=PROFILES["grep"],
                num_reducers=0,
            )
        with pytest.raises(ConfigError):
            MapReduceJob(
                name="x",
                mapper="not callable",  # type: ignore[arg-type]
                reducer=lambda k, v: [],
                profile=PROFILES["grep"],
            )
