"""Tests for the HDFS block balancer and the reducer-skew experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HDFSCluster, Record
from repro.errors import ConfigError, StorageError
from repro.hdfs import BlockBalancer
from repro.hdfs.placement import RandomPlacement


class _BiasedPlacement(RandomPlacement):
    """Puts every replica on the first two nodes — guaranteed lopsidedness."""

    def place(self, block_id, nodes):
        return [nodes[0], nodes[1]]


def _lopsided_cluster(seed=3, num_nodes=8):
    rng = np.random.default_rng(seed)
    cluster = HDFSCluster(
        num_nodes=num_nodes, block_size=2048, replication=2, rng=rng
    )
    cluster.write_dataset(
        "d", [Record("s", float(i), "x" * 40) for i in range(1200)]
    )
    cluster.placement_policy = _BiasedPlacement(2, rng=rng)
    cluster.append_records(
        "d", [Record("s", 3000.0 + i, "y" * 40) for i in range(1800)]
    )
    return cluster


class TestBlockBalancer:
    def test_reduces_spread(self):
        cluster = _lopsided_cluster()
        balancer = BlockBalancer(cluster, threshold=0.1)
        report = balancer.balance()
        assert report.num_moves > 0
        assert report.spread_after() < report.spread_before()

    def test_converges_within_threshold(self):
        cluster = _lopsided_cluster()
        balancer = BlockBalancer(cluster, threshold=0.15)
        balancer.balance()
        usage = balancer.utilization()
        mean = sum(usage.values()) / len(usage)
        # every node within the band (or no legal move could fix it)
        assert max(usage.values()) <= mean * 1.35

    def test_total_bytes_conserved(self):
        cluster = _lopsided_cluster()
        balancer = BlockBalancer(cluster)
        before = sum(balancer.utilization().values())
        balancer.balance()
        assert sum(balancer.utilization().values()) == before

    def test_replica_invariants_preserved(self):
        cluster = _lopsided_cluster()
        BlockBalancer(cluster).balance()
        namenode = cluster.namenode
        for bid in namenode.blocks_of("d"):
            replicas = namenode.block_locations("d", bid)
            assert len(set(replicas)) == len(replicas) == 2
            for node in replicas:
                assert cluster.datanodes[node].has_replica("d", bid)

    def test_balanced_cluster_noop(self):
        rng = np.random.default_rng(0)
        cluster = HDFSCluster(num_nodes=4, block_size=2048, rng=rng)
        cluster.write_dataset(
            "d", [Record("s", float(i), "x" * 40) for i in range(800)]
        )
        report = BlockBalancer(cluster, threshold=0.5).balance()
        assert report.num_moves == 0

    def test_max_moves_bounds_pass(self):
        cluster = _lopsided_cluster()
        report = BlockBalancer(cluster, threshold=0.05).balance(max_moves=3)
        assert report.num_moves <= 3

    def test_storage_balance_is_not_subdataset_balance(self):
        """The paper's core point: byte-balanced nodes can still be
        sub-dataset-imbalanced."""
        from repro import DataNet
        from repro.core.bucketizer import BucketSpec
        from repro.mapreduce import LocalityScheduler

        rng = np.random.default_rng(5)
        cluster = HDFSCluster(num_nodes=8, block_size=2048, rng=rng)
        # 'hot' clustered at the start, filler later: every block same size
        records = [Record("hot", float(i), "h" * 40) for i in range(400)]
        records += [Record(f"c{i % 40}", 400.0 + i, "c" * 40) for i in range(800)]
        dataset = cluster.write_dataset("d", records)
        BlockBalancer(cluster, threshold=0.05).balance()
        datanet = DataNet.build(
            dataset, alpha=0.5, spec=BucketSpec.for_block_size(2048)
        )
        stock = LocalityScheduler().schedule(
            datanet.bipartite_graph("hot", skip_absent=False)
        )
        # storage is even, yet the hot sub-dataset's workload is not
        assert stock.imbalance > 1.3

    def test_validation(self):
        cluster = _lopsided_cluster()
        with pytest.raises(ConfigError):
            BlockBalancer(cluster, threshold=0.0)
        with pytest.raises(ConfigError):
            BlockBalancer(cluster).balance(max_moves=0)


class TestDropReplica:
    def test_drop_and_missing(self):
        rng = np.random.default_rng(1)
        cluster = HDFSCluster(num_nodes=3, block_size=2048, rng=rng)
        dataset = cluster.write_dataset(
            "d", [Record("s", float(i), "x" * 30) for i in range(50)]
        )
        node = dataset.placement()[0][0]
        cluster.datanodes[node].drop_replica("d", 0)
        assert not cluster.datanodes[node].has_replica("d", 0)
        with pytest.raises(StorageError):
            cluster.datanodes[node].drop_replica("d", 0)


class TestReducerSkew:
    def test_sampling_flattens_reducers_only(self):
        from repro.experiments import ReferenceConfig
        from repro.experiments.reducer_skew import run_reducer_skew

        r = run_reducer_skew(ReferenceConfig.small())
        assert r.sampled_imbalance <= r.hash_imbalance + 0.05
        # the map-side story is untouched by the partitioner
        assert r.map_imbalance_without > r.map_imbalance_with - 0.05
        assert "Reducer skew" in r.format()
