"""Tests for the comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DefaultHadoopScheduler,
    DynamicRebalancer,
    SamplingPartitioner,
)
from repro.core.bipartite import BipartiteGraph
from repro.errors import ConfigError
from repro.hdfs import Record
from repro.mapreduce.costmodel import ClusterCostModel


def _records(node_loads: dict) -> dict:
    """node -> list of records totaling roughly the requested bytes."""
    out = {}
    for node, nbytes in node_loads.items():
        recs = []
        while sum(r.nbytes for r in recs) < nbytes:
            recs.append(Record("s", 0.0, "x" * 40))
        out[node] = recs
    return out


class TestDefaultHadoopScheduler:
    def test_is_locality_scheduler(self):
        g = BipartiteGraph({0: [0, 1], 1: [1]}, {0: 5, 1: 7}, nodes=[0, 1])
        a = DefaultHadoopScheduler().schedule(g)
        assert a.num_tasks == 2


class TestDynamicRebalancer:
    def test_balances_within_tolerance(self):
        data = _records({0: 10_000, 1: 1_000, 2: 1_000, 3: 1_000})
        balanced, stats = DynamicRebalancer(tolerance=0.1).rebalance(data)
        loads = [sum(r.nbytes for r in v) for v in balanced.values()]
        mean = sum(loads) / len(loads)
        assert max(loads) <= 1.25 * mean

    def test_conserves_records(self):
        data = _records({0: 8_000, 1: 500})
        balanced, _ = DynamicRebalancer().rebalance(data)
        before = sum(len(v) for v in data.values())
        after = sum(len(v) for v in balanced.values())
        assert before == after

    def test_input_not_mutated(self):
        data = _records({0: 8_000, 1: 500})
        sizes_before = {n: len(v) for n, v in data.items()}
        DynamicRebalancer().rebalance(data)
        assert {n: len(v) for n, v in data.items()} == sizes_before

    def test_migration_stats(self):
        data = _records({0: 10_000, 1: 0})
        _, stats = DynamicRebalancer().rebalance(data)
        assert stats.migrated_bytes > 0
        assert 0 < stats.migration_fraction < 1
        assert stats.migration_time > 0
        assert stats.overhead_time >= stats.migration_time
        assert stats.nodes_touched == 2
        assert all(nbytes > 0 for _s, _d, nbytes in stats.transfers)

    def test_already_balanced_moves_nothing(self):
        data = _records({0: 5_000, 1: 5_000})
        _, stats = DynamicRebalancer(tolerance=0.1).rebalance(data)
        assert stats.migrated_bytes == 0
        assert stats.migration_time == 0.0

    def test_migration_fraction_significant_under_heavy_skew(self):
        """The paper's observation: heavy skew forces large migrations."""
        rng = np.random.default_rng(0)
        data = _records(
            {n: int(w) for n, w in enumerate(rng.gamma(0.5, 4000.0, 16))}
        )
        _, stats = DynamicRebalancer(tolerance=0.05).rebalance(data)
        assert stats.migration_fraction > 0.15

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicRebalancer(tolerance=0.0)
        with pytest.raises(ConfigError):
            DynamicRebalancer(monitor_overhead_s=-1)
        with pytest.raises(ConfigError):
            DynamicRebalancer().rebalance({})


class TestSamplingPartitioner:
    def _pairs(self, rng, num_keys=50, skew=2.0, n=5000):
        keys = rng.zipf(skew, size=n) % num_keys
        return [(f"k{k}", 1) for k in keys]

    def test_balances_skewed_keys_better_than_hash(self, rng):
        pairs = self._pairs(rng)
        part = SamplingPartitioner(4, sample_rate=0.5, rng=rng).fit(pairs)
        loads = part.reducer_loads(pairs)
        # hash partitioning for comparison
        import hashlib

        hash_loads = [0] * 4
        for k, _v in pairs:
            h = int.from_bytes(
                hashlib.blake2b(repr(k).encode(), digest_size=8).digest(), "little"
            )
            hash_loads[h % 4] += 1
        assert max(loads) <= max(hash_loads)

    def test_full_sampling_near_perfect(self, rng):
        pairs = [(f"k{i % 20}", 1) for i in range(2000)]
        part = SamplingPartitioner(4, sample_rate=1.0, rng=rng).fit(pairs)
        loads = part.reducer_loads(pairs)
        assert max(loads) - min(loads) <= 150

    def test_unfitted_raises(self):
        with pytest.raises(ConfigError):
            SamplingPartitioner(4)("key")

    def test_unsampled_keys_fall_back_to_hash(self, rng):
        part = SamplingPartitioner(4, sample_rate=1.0, rng=rng).fit([("a", 1)])
        assert 0 <= part("never-seen") < 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplingPartitioner(0)
        with pytest.raises(ConfigError):
            SamplingPartitioner(4, sample_rate=0.0)
        with pytest.raises(ConfigError):
            SamplingPartitioner(4, sample_rate=1.5)
