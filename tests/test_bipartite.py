"""Tests for the cluster-node/block bipartite graph."""

from __future__ import annotations

import pytest

from repro.core.bipartite import BipartiteGraph
from repro.errors import ConfigError, SchedulingError


def _graph() -> BipartiteGraph:
    placement = {0: [0, 1, 2], 1: [1, 2, 3], 2: [0, 3]}
    weights = {0: 100, 1: 50, 2: 0}
    return BipartiteGraph(placement, weights, nodes=[0, 1, 2, 3, 4])


class TestConstruction:
    def test_nodes_include_explicit_universe(self):
        g = _graph()
        assert g.nodes == [0, 1, 2, 3, 4]
        assert g.blocks_on(4) == set()

    def test_nodes_inferred_from_placement(self):
        g = BipartiteGraph({0: [5, 7]}, {0: 10})
        assert g.nodes == [5, 7]

    def test_missing_weight_defaults_to_zero(self):
        g = BipartiteGraph({0: [1]}, {})
        assert g.weight(0) == 0

    def test_rejects_weight_without_placement(self):
        with pytest.raises(ConfigError):
            BipartiteGraph({0: [1]}, {0: 5, 9: 3})

    def test_rejects_empty_replica_list(self):
        with pytest.raises(ConfigError):
            BipartiteGraph({0: []}, {0: 5})

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigError):
            BipartiteGraph({0: [1]}, {0: -5})


class TestQueries:
    def test_blocks_on(self):
        g = _graph()
        assert g.blocks_on(0) == {0, 2}
        assert g.blocks_on(1) == {0, 1}

    def test_nodes_of(self):
        g = _graph()
        assert g.nodes_of(1) == {1, 2, 3}

    def test_is_local(self):
        g = _graph()
        assert g.is_local(0, 0)
        assert not g.is_local(4, 0)

    def test_weight_and_total(self):
        g = _graph()
        assert g.weight(0) == 100
        assert g.total_weight() == 150

    def test_counts(self):
        g = _graph()
        assert g.num_nodes == 5
        assert g.num_blocks == 3

    def test_unknown_lookups_raise(self):
        g = _graph()
        with pytest.raises(SchedulingError):
            g.weight(99)
        with pytest.raises(SchedulingError):
            g.nodes_of(99)
        with pytest.raises(SchedulingError):
            g.blocks_on("nope")


class TestMutation:
    def test_remove_block_drops_edges(self):
        g = _graph()
        g.remove_block(0)
        assert 0 not in g.blocks_on(1)
        assert g.num_blocks == 2
        assert g.total_weight() == 50

    def test_remove_block_twice_raises(self):
        g = _graph()
        g.remove_block(0)
        with pytest.raises(SchedulingError):
            g.remove_block(0)

    def test_copy_isolated_from_original(self):
        g = _graph()
        c = g.copy()
        c.remove_block(0)
        assert g.num_blocks == 3
        assert c.num_blocks == 2
        assert g.blocks_on(0) == {0, 2}
