"""Tests for the from-scratch Bloom filter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import (
    BloomFilter,
    bits_per_element,
    optimal_num_bits,
    optimal_num_hashes,
)
from repro.errors import ConfigError


class TestSizing:
    def test_bits_per_element_paper_figure(self):
        # The paper quotes ~10 bits per sub-dataset under a typical
        # configuration; eps=1% gives 9.6 bits.
        assert bits_per_element(0.01) == pytest.approx(9.585, abs=0.01)

    def test_lower_error_needs_more_bits(self):
        assert bits_per_element(0.001) > bits_per_element(0.01) > bits_per_element(0.1)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_error_rate(self, eps):
        with pytest.raises(ConfigError):
            bits_per_element(eps)

    def test_optimal_bits_scale_linearly(self):
        assert optimal_num_bits(2000, 0.01) == pytest.approx(
            2 * optimal_num_bits(1000, 0.01), rel=0.01
        )

    def test_optimal_hashes_at_least_one(self):
        assert optimal_num_hashes(8, 10**6) == 1

    def test_optimal_hashes_typical(self):
        m = optimal_num_bits(1000, 0.01)
        assert 6 <= optimal_num_hashes(m, 1000) <= 8  # k = ln2 * m/n ~ 6.6


class TestMembership:
    def test_no_false_negatives_small(self):
        bf = BloomFilter(capacity=100, error_rate=0.01)
        items = [f"subdataset-{i}" for i in range(100)]
        bf.update(items)
        assert all(item in bf for item in items)

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(capacity=10)
        assert "anything" not in bf

    def test_false_positive_rate_near_target(self):
        eps = 0.02
        n = 3000
        bf = BloomFilter(capacity=n, error_rate=eps, seed=42)
        bf.update(f"in-{i}" for i in range(n))
        fp = sum(1 for i in range(20000) if f"out-{i}" in bf) / 20000
        assert fp < 3 * eps  # generous bound, fp is ~eps in expectation

    def test_accepts_bytes_keys(self):
        bf = BloomFilter(capacity=10)
        bf.add(b"raw-bytes-key")
        assert b"raw-bytes-key" in bf

    def test_seed_changes_false_positive_pattern(self):
        n = 200
        a = BloomFilter(capacity=n, error_rate=0.05, seed=1)
        b = BloomFilter(capacity=n, error_rate=0.05, seed=2)
        items = [f"k{i}" for i in range(n)]
        a.update(items)
        b.update(items)
        probes = [f"probe-{i}" for i in range(20000)]
        fp_a = {p for p in probes if p in a}
        fp_b = {p for p in probes if p in b}
        # Different salts should not produce identical FP sets
        assert fp_a != fp_b or not fp_a

    @given(st.lists(st.text(min_size=1, max_size=20), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_no_false_negatives(self, items):
        bf = BloomFilter(capacity=max(len(items), 1), error_rate=0.01)
        bf.update(items)
        assert all(i in bf for i in items)


class TestCounting:
    def test_count_tracks_distinct_inserts(self):
        bf = BloomFilter(capacity=100)
        for i in range(50):
            bf.add(f"x{i}")
        assert 45 <= bf.approx_count <= 50  # collisions may undercount slightly
        assert len(bf) == bf.approx_count

    def test_duplicate_insert_not_double_counted(self):
        bf = BloomFilter(capacity=100)
        bf.add("same")
        bf.add("same")
        assert bf.approx_count == 1

    def test_fill_ratio_monotonic(self):
        bf = BloomFilter(capacity=50, error_rate=0.01)
        assert bf.fill_ratio == 0.0
        bf.add("a")
        r1 = bf.fill_ratio
        bf.update(f"b{i}" for i in range(30))
        assert bf.fill_ratio >= r1 > 0

    def test_current_error_rate_grows_with_fill(self):
        bf = BloomFilter(capacity=20, error_rate=0.01)
        assert bf.current_error_rate() == 0.0
        bf.update(f"x{i}" for i in range(20))
        assert 0.0 < bf.current_error_rate() < 1.0


class TestAlgebra:
    def test_union_contains_both(self):
        a = BloomFilter(capacity=100, seed=7)
        b = BloomFilter(capacity=100, seed=7)
        a.update(["left-1", "left-2"])
        b.update(["right-1"])
        u = a.union(b)
        for item in ("left-1", "left-2", "right-1"):
            assert item in u

    def test_union_rejects_mismatched_geometry(self):
        a = BloomFilter(capacity=100)
        b = BloomFilter(capacity=5000)
        with pytest.raises(ConfigError):
            a.union(b)

    def test_union_rejects_mismatched_seed(self):
        a = BloomFilter(capacity=100, seed=1)
        b = BloomFilter(capacity=100, seed=2)
        with pytest.raises(ConfigError):
            a.union(b)

    def test_copy_is_independent(self):
        a = BloomFilter(capacity=10)
        a.add("x")
        c = a.copy()
        c.add("y")
        assert "y" in c and "y" not in a


class TestSerialization:
    def test_roundtrip(self):
        bf = BloomFilter(capacity=64, error_rate=0.02, seed=5)
        bf.update(f"m{i}" for i in range(64))
        back = BloomFilter.from_bytes(bf.to_bytes())
        assert back.num_bits == bf.num_bits
        assert back.num_hashes == bf.num_hashes
        assert back.seed == bf.seed
        assert all(f"m{i}" in back for i in range(64))
        assert back.approx_count == bf.approx_count

    def test_rejects_truncated_blob(self):
        with pytest.raises(ConfigError):
            BloomFilter.from_bytes(b"tiny")

    def test_rejects_corrupt_length(self):
        bf = BloomFilter(capacity=64)
        blob = bf.to_bytes()[:-2]
        with pytest.raises(ConfigError):
            BloomFilter.from_bytes(blob)

    def test_memory_accounting(self):
        bf = BloomFilter(capacity=1000, error_rate=0.01)
        assert bf.memory_bytes == (bf.num_bits + 7) // 8
        # ~10 bits per element at 1% (the paper's headline number)
        assert 9 <= bf.memory_bits / 1000 <= 11


class TestValidation:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=-1)

    def test_zero_capacity_is_usable(self):
        bf = BloomFilter(capacity=0)
        bf.add("x")
        assert "x" in bf
