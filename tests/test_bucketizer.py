"""Tests for the linear-time dominant sub-dataset separation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bucketizer import BucketSeparator, BucketSpec
from repro.errors import ConfigError
from repro.units import KiB


class TestBucketSpec:
    def test_fibonacci_matches_paper(self):
        spec = BucketSpec.fibonacci()
        assert spec.boundaries == (1024, 2048, 3072, 5120, 8192, 13312, 21504, 34816)
        assert spec.num_buckets == 9

    def test_bucket_of_below_first_boundary(self):
        spec = BucketSpec.fibonacci()
        assert spec.bucket_of(0) == 0
        assert spec.bucket_of(1023) == 0

    def test_bucket_of_boundary_is_inclusive_above(self):
        spec = BucketSpec.fibonacci()
        assert spec.bucket_of(1024) == 1
        assert spec.bucket_of(2048) == 2

    def test_bucket_of_top_open_ended(self):
        spec = BucketSpec.fibonacci()
        assert spec.bucket_of(34816) == 8
        assert spec.bucket_of(10**9) == 8

    def test_bucket_of_rejects_negative(self):
        with pytest.raises(ConfigError):
            BucketSpec.fibonacci().bucket_of(-1)

    def test_lower_bound_inverse_of_bucket_of(self):
        spec = BucketSpec.fibonacci()
        for bucket in range(spec.num_buckets):
            lb = spec.lower_bound(bucket)
            assert spec.bucket_of(lb) == bucket

    def test_lower_bound_range_check(self):
        with pytest.raises(ConfigError):
            BucketSpec.fibonacci().lower_bound(99)

    def test_uniform_spec(self):
        spec = BucketSpec.uniform(step=10, count=3)
        assert spec.boundaries == (10, 20, 30)

    def test_geometric_spec(self):
        spec = BucketSpec.geometric(base=100, ratio=2.0, count=4)
        assert spec.boundaries == (100, 200, 400, 800)

    def test_rejects_non_increasing(self):
        with pytest.raises(ConfigError):
            BucketSpec((10, 10))

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            BucketSpec(())

    def test_rejects_nonpositive_boundary(self):
        with pytest.raises(ConfigError):
            BucketSpec((0, 5))


class TestObserve:
    def test_single_observation(self):
        sep = BucketSeparator()
        sep.observe("a", 500)
        assert sep.num_subdatasets == 1
        assert sep.total_bytes == 500
        assert sep.histogram()[0] == 1

    def test_accumulation_moves_buckets(self):
        sep = BucketSeparator()
        sep.observe("a", 900)
        assert sep.histogram()[0] == 1
        sep.observe("a", 900)  # total 1800 -> bucket 1
        hist = sep.histogram()
        assert hist[0] == 0 and hist[1] == 1

    def test_histogram_counts_all_subdatasets(self):
        sep = BucketSeparator()
        for i in range(10):
            sep.observe(f"s{i}", 100)
        assert sum(sep.histogram()) == 10

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigError):
            BucketSeparator().observe("a", -1)

    def test_observe_many(self):
        sep = BucketSeparator()
        sep.observe_many([("a", 10), ("b", 20), ("a", 30)])
        assert sep.sizes() == {"a": 40, "b": 20}

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(0, 5000)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_histogram_consistent_with_sizes(self, obs):
        """Histogram always equals recomputing buckets from final sizes."""
        sep = BucketSeparator()
        sep.observe_many(obs)
        sizes = sep.sizes()
        expected = [0] * sep.spec.num_buckets
        for size in sizes.values():
            expected[sep.spec.bucket_of(size)] += 1
        assert sep.histogram() == expected


class TestSeparation:
    def _loaded_separator(self) -> BucketSeparator:
        sep = BucketSeparator()
        # 2 dominant (40 KiB, 36 KiB), 8 small (<1 KiB)
        sep.observe("big-1", 40 * KiB)
        sep.observe("big-2", 36 * KiB)
        for i in range(8):
            sep.observe(f"small-{i}", 100 + i)
        return sep

    def test_separate_by_alpha_puts_large_in_dominant(self):
        res = self._loaded_separator().separate(alpha=0.2)
        assert set(res.dominant) == {"big-1", "big-2"}
        assert len(res.tail) == 8

    def test_alpha_one_admits_everything(self):
        res = self._loaded_separator().separate(alpha=1.0)
        assert len(res.dominant) == 10
        assert not res.tail

    def test_alpha_zero_admits_nothing(self):
        res = self._loaded_separator().separate(alpha=0.0)
        assert not res.dominant
        assert len(res.tail) == 10

    def test_separation_is_partition(self):
        sep = self._loaded_separator()
        res = sep.separate(alpha=0.5)
        assert set(res.dominant) | set(res.tail) == set(sep.sizes())
        assert not (set(res.dominant) & set(res.tail))

    def test_dominant_all_at_least_as_large_as_tail(self):
        """Bucket cutoff never puts a smaller-bucket item above a larger one."""
        sep = self._loaded_separator()
        res = sep.separate(alpha=0.2)
        if res.dominant and res.tail:
            min_dominant_bucket = min(
                sep.spec.bucket_of(v) for v in res.dominant.values()
            )
            max_tail_bucket = max(sep.spec.bucket_of(v) for v in res.tail.values())
            assert min_dominant_bucket >= max_tail_bucket or (
                min_dominant_bucket >= res.cutoff_bucket > max_tail_bucket
            )

    def test_realized_alpha_recorded(self):
        res = self._loaded_separator().separate(alpha=0.2)
        assert res.alpha == pytest.approx(0.2)

    def test_explicit_cutoff_bucket(self):
        sep = self._loaded_separator()
        res = sep.separate(cutoff_bucket=sep.spec.num_buckets - 1)
        assert set(res.dominant) == {"big-1", "big-2"}

    def test_requires_exactly_one_mode(self):
        sep = self._loaded_separator()
        with pytest.raises(ConfigError):
            sep.separate()
        with pytest.raises(ConfigError):
            sep.separate(alpha=0.5, cutoff_bucket=2)

    def test_alpha_out_of_range(self):
        with pytest.raises(ConfigError):
            self._loaded_separator().separate(alpha=1.5)

    def test_empty_separator(self):
        res = BucketSeparator().separate(alpha=0.5)
        assert not res.dominant and not res.tail
        assert res.alpha == 0.0

    def test_cutoff_for_budget_zero_admits_nothing(self):
        sep = self._loaded_separator()
        cutoff = sep.cutoff_for_budget(0)
        res = sep.separate(cutoff_bucket=cutoff)
        assert not res.dominant

    def test_cutoff_for_budget_large_admits_all(self):
        sep = self._loaded_separator()
        cutoff = sep.cutoff_for_budget(10**6)
        res = sep.separate(cutoff_bucket=cutoff)
        assert len(res.dominant) == 10

    def test_cutoff_for_budget_partial(self):
        sep = self._loaded_separator()
        # budget of 2 entries: only the top bucket (2 items) fits
        cutoff = sep.cutoff_for_budget(2)
        res = sep.separate(cutoff_bucket=cutoff)
        assert set(res.dominant) == {"big-1", "big-2"}

    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=4), st.integers(0, 100 * KiB)),
            max_size=100,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_alpha_closest_whole_bucket(self, obs, alpha):
        """separate(alpha) admits the whole-bucket count closest to alpha*m."""
        sep = BucketSeparator()
        sep.observe_many(obs)
        res = sep.separate(alpha=alpha)
        m = sep.num_subdatasets
        if not m or alpha == 0.0:
            assert not res.dominant
            return
        # All achievable admitted-counts: cumulative suffix sums of buckets.
        hist = sep.histogram()
        achievable = {0}
        acc = 0
        for bucket in range(len(hist) - 1, -1, -1):
            acc += hist[bucket]
            achievable.add(acc)
        target = alpha * m
        best = min(abs(c - target) for c in achievable)
        assert abs(len(res.dominant) - target) <= best + 1e-9

    @given(
        st.lists(
            st.tuples(st.sampled_from("pqrs"), st.integers(0, 100 * KiB)), max_size=60
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_dominant_never_smaller_bucket_than_tail(self, obs, alpha):
        """No tail sub-dataset sits in a strictly higher bucket than a dominant one."""
        sep = BucketSeparator()
        sep.observe_many(obs)
        res = sep.separate(alpha=alpha)
        if res.dominant and res.tail:
            min_dom = min(sep.spec.bucket_of(v) for v in res.dominant.values())
            max_tail = max(sep.spec.bucket_of(v) for v in res.tail.values())
            assert min_dom > max_tail
