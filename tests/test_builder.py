"""Tests for the single-scan ElasticMap builder."""

from __future__ import annotations

import pytest

from repro.core.builder import ElasticMapBuilder, build_elasticmap_array
from repro.core.bucketizer import BucketSpec
from repro.core.elasticmap import MemoryModel
from repro.errors import ConfigError
from repro.units import KiB


def _blocks():
    """Two blocks: block 0 dominated by 'hot', block 1 by 'other'."""
    return [
        (0, [("hot", 20 * KiB), ("a", 100), ("b", 200), ("c", 50)]),
        (1, [("other", 36 * KiB), ("hot", 150), ("a", 80)]),
    ]


class TestBuilderConfig:
    def test_requires_exactly_one_sizing_mode(self):
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=0.3, budget_bits_per_block=100.0)
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=None, budget_bits_per_block=None)

    def test_alpha_range_checked(self):
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=-0.1)
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=1.1)

    def test_budget_range_checked(self):
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=None, budget_bits_per_block=-5.0)


class TestBuildByAlpha:
    def test_dominant_recorded_exactly(self):
        arr = build_elasticmap_array(_blocks(), alpha=0.25)
        assert arr[0].query("hot") == (20 * KiB, "exact")
        assert arr[1].query("other") == (36 * KiB, "exact")

    def test_tail_in_bloom(self):
        arr = build_elasticmap_array(_blocks(), alpha=0.25)
        size, kind = arr[0].query("a")
        assert kind == "approx"

    def test_alpha_one_stores_everything_exactly(self):
        arr = build_elasticmap_array(_blocks(), alpha=1.0)
        assert arr[0].query("c") == (50, "exact")
        assert arr.estimate_total_size("hot") == 20 * KiB + 150

    def test_estimate_close_to_truth(self):
        arr = build_elasticmap_array(_blocks(), alpha=0.25)
        est = arr.estimate_total_size("hot")
        true = 20 * KiB + 150
        # approximate for block 1 (bloom), exact for block 0
        assert est >= 20 * KiB
        assert abs(est - true) < 40 * KiB

    def test_custom_bucket_spec(self):
        arr = build_elasticmap_array(
            _blocks(), alpha=0.25, spec=BucketSpec.uniform(step=KiB, count=4)
        )
        assert arr[0].query("hot")[1] == "exact"


class TestBuildByBudget:
    def test_generous_budget_stores_all(self):
        builder = ElasticMapBuilder(alpha=None, budget_bits_per_block=10**9)
        arr = builder.build(_blocks())
        assert arr[0].query("c")[1] == "exact"

    def test_tight_budget_stores_only_top(self):
        model = MemoryModel()
        # budget for ~1 hashmap entry on a 4-subdataset block
        budget = model.cost_bits(4, 0.25) + 1
        builder = ElasticMapBuilder(
            alpha=None, budget_bits_per_block=budget, memory_model=model
        )
        arr = builder.build(_blocks())
        assert arr[0].query("hot")[1] == "exact"
        assert arr[0].query("a")[1] == "approx"

    def test_zero_budget_uses_bloom_only(self):
        builder = ElasticMapBuilder(alpha=None, budget_bits_per_block=0.0)
        arr = builder.build(_blocks())
        assert arr[0].num_dominant == 0
        assert arr[0].query("hot")[1] == "approx"


class TestBuildStats:
    def test_stats_counts(self):
        builder = ElasticMapBuilder(alpha=0.25)
        builder.build(_blocks())
        assert builder.stats.blocks_built == 2
        assert builder.stats.records_scanned == 7
        assert builder.stats.subdatasets_per_block == [4, 3]

    def test_mean_alpha(self):
        builder = ElasticMapBuilder(alpha=0.25)
        builder.build(_blocks())
        assert 0.0 < builder.stats.mean_alpha <= 1.0

    def test_mean_alpha_empty(self):
        builder = ElasticMapBuilder(alpha=0.25)
        assert builder.stats.mean_alpha == 0.0

    def test_single_scan_complexity(self):
        """The builder touches each record exactly once (paper: O(m*n))."""
        seen = []

        def tracked(block_id):
            for item in [("x", 10), ("y", 20)]:
                seen.append((block_id, item))
                yield item

        builder = ElasticMapBuilder(alpha=0.5)
        builder.build([(0, tracked(0)), (1, tracked(1))])
        assert len(seen) == 4  # 2 records x 2 blocks, no re-reads
