"""End-to-end chaos tests: the ISSUE acceptance criteria.

* Determinism — the same FaultPlan over the same seeded cluster yields an
  identical JobResult across two fresh runs.
* Output safety — killing a node mid-selection still produces the exact
  failure-free analysis output.
* Graceful degradation — a metadata shard outage downgrades only the
  affected blocks to locality scheduling; the job completes and records
  which blocks degraded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.cli import main
from repro.core.metastore import DistributedMetaStore
from repro.errors import ConfigError, SchedulingError
from repro.faults import (
    ChaosRunner,
    FaultPlan,
    MetaOutage,
    NodeCrash,
    RetryPolicy,
    SlowNode,
    TransientFaults,
    degraded_schedule,
    merge_assignments,
)
from repro.mapreduce.apps.word_count import word_count_job
from tests.conftest import make_records


def _fresh(num_nodes=8, seed=11):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 150, "cold": 50}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    return cluster, dataset


def _run(plan, *, metastore=None, retry=None, num_nodes=8):
    cluster, dataset = _fresh(num_nodes=num_nodes)
    runner = ChaosRunner(
        cluster, plan, metastore=metastore, retry=retry or RetryPolicy()
    )
    return runner.run(dataset, "hot", word_count_job())


class TestDeterminism:
    def test_same_plan_same_cluster_identical_result(self):
        plan = FaultPlan(
            seed=3,
            crashes=(NodeCrash(2, time=0.5),),
            transient=TransientFaults(0.15),
        )
        a = _run(plan)
        b = _run(plan)
        assert a.job == b.job
        assert repr(a.job) == repr(b.job)
        assert a.attempts_histogram == b.attempts_histogram
        assert a.wasted_seconds == b.wasted_seconds
        assert a.rescheduled_blocks == b.rescheduled_blocks

    def test_empty_plan_equals_baseline(self):
        report = _run(FaultPlan())
        assert report.job == report.baseline
        assert report.recovery_overhead == 0.0
        assert report.dead_nodes == [] and report.rescheduled_blocks == []


class TestCrashRecovery:
    def test_mid_selection_crash_output_intact(self):
        report = _run(FaultPlan(seed=1, crashes=(NodeCrash(2, time=0.5),)))
        assert report.output_matches_baseline
        assert report.dead_nodes == [2]
        assert report.re_replicated_bytes > 0
        assert report.makespan >= report.baseline.makespan
        # the dead node contributed nothing to the surviving selection
        assert 2 not in report.job.selection.local_data

    def test_two_crashes_survived(self):
        plan = FaultPlan(
            seed=2, crashes=(NodeCrash(1, time=0.3), NodeCrash(5, time=0.9))
        )
        report = _run(plan)
        assert report.output_matches_baseline
        assert report.dead_nodes == [1, 5]

    def test_transient_faults_retry_and_converge(self):
        report = _run(FaultPlan(seed=9, transient=TransientFaults(0.25)))
        assert report.output_matches_baseline
        assert report.summary().retried_tasks > 0
        assert report.wasted_seconds > 0

    def test_slow_node_only_stretches_makespan(self):
        report = _run(FaultPlan(slow_nodes=(SlowNode(0, factor=3.0),)))
        assert report.output_matches_baseline
        assert report.makespan >= report.baseline.makespan
        assert report.attempts_histogram == {
            1: report.summary().total_tasks
        }

    def test_unknown_crash_node_rejected(self):
        cluster, dataset = _fresh()
        with pytest.raises(ConfigError):
            ChaosRunner(cluster, FaultPlan(crashes=(NodeCrash(99),)))

    def test_summary_round_trip(self):
        report = _run(FaultPlan(seed=4, crashes=(NodeCrash(3, time=0.4),)))
        summary = report.summary()
        assert summary.makespan == report.makespan
        assert summary.dead_nodes == 1
        text = report.format()
        assert "Recovery summary" in text and "attempts" in text


class TestMetastoreDegradation:
    def _store(self, dataset, *, num_nodes=3, replication=1):
        datanet = DataNet.build(dataset, alpha=0.3)
        store = DistributedMetaStore(
            num_nodes=num_nodes, replication=replication
        )
        store.load_array(datanet.elasticmap)
        return store

    def test_shard_down_degrades_only_owned_blocks(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        expected = {
            bid
            for bid in store.block_ids
            if store.shard_map.owners(bid) == ["meta-0"]
        }
        store.fail_node("meta-0")
        _assignment, healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assert set(degraded) == expected
        assert not set(degraded) & set(healthy)

    def test_degraded_blocks_all_scheduled(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        store.fail_node("meta-0")
        assignment, healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assigned = {
            b for bs in assignment.blocks_by_node.values() for b in bs
        }
        # degraded blocks cannot be skipped (no metadata to prove absence)
        assert set(degraded) <= assigned

    def test_replicated_store_needs_no_degradation(self):
        cluster, dataset = _fresh()
        store = self._store(dataset, replication=2)
        store.fail_node("meta-0")
        _assignment, _healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assert degraded == []

    def test_job_completes_with_shard_down(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        plan = FaultPlan(meta_outages=(MetaOutage("meta-0"),))
        runner = ChaosRunner(cluster, plan, metastore=store)
        report = runner.run(dataset, "hot", word_count_job())
        assert report.output_matches_baseline
        assert report.degraded_blocks  # which blocks fell back is recorded
        assert report.summary().degraded_blocks == len(report.degraded_blocks)

    def test_exclude_nodes_respected(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        assignment, _h, _d = degraded_schedule(
            store, dataset, "hot", exclude_nodes=(0, 1)
        )
        assert not {0, 1} & set(assignment.blocks_by_node)


class TestMergeAssignments:
    def test_duplicate_block_rejected(self):
        cluster, dataset = _fresh()
        datanet = DataNet.build(dataset, alpha=0.3)
        a = datanet.schedule("hot")
        with pytest.raises(SchedulingError):
            merge_assignments(a, a)


class TestChaosCli:
    def test_cli_crash_run(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--kill", "2@0.5", "--flaky", "0.1", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Recovery summary" in out
        assert "dead nodes              : 1" in out

    def test_cli_meta_outage(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--meta-nodes", "3", "--meta-down", "meta-0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded blocks" in out

    def test_cli_bad_kill_spec(self, capsys):
        assert main(["chaos", "--kill", "nope"]) == 2
        assert "expected NODE@NUMBER" in capsys.readouterr().err


class TestIntegrityChaos:
    """ISSUE acceptance: injected corruption never silently reaches output —
    it is repaired, rebuilt, or raised as IntegrityError."""

    def _plan_rot(self, *pairs, seed=5, **kw):
        from repro.faults import BitRot

        return FaultPlan(
            seed=seed, bit_rots=tuple(BitRot(n, b) for n, b in pairs), **kw
        )

    def test_bit_rot_repaired_and_output_intact(self):
        report = _run(self._plan_rot((0, 0), (3, 1)))
        assert report.output_matches_baseline
        i = report.integrity
        assert i.corruptions_injected == 2
        assert i.corruptions_repaired == i.corruptions_injected
        assert i.fully_repaired

    def test_bit_rot_with_crash_and_transients(self):
        plan = self._plan_rot(
            (1, 0),
            seed=3,
            crashes=(NodeCrash(2, time=0.5),),
            transient=TransientFaults(0.1),
        )
        report = _run(plan)
        assert report.output_matches_baseline
        assert report.integrity.fully_repaired

    def test_every_replica_rotten_raises_not_corrupts(self):
        from repro.errors import IntegrityError
        from repro.faults import BitRot

        cluster, dataset = _fresh()
        replicas = dataset.placement()[0]
        plan = FaultPlan(
            seed=1, bit_rots=tuple(BitRot(n, 0) for n in replicas)
        )
        runner = ChaosRunner(cluster, plan)
        with pytest.raises(IntegrityError):
            runner.run(dataset, "hot", word_count_job())

    def test_stale_metadata_rebuilt_and_output_intact(self):
        from repro.faults import StaleMetadata

        plan = FaultPlan(
            seed=2, stale_metadata=(StaleMetadata(0), StaleMetadata(2))
        )
        report = _run(plan)
        assert report.output_matches_baseline
        assert report.integrity.stale_entries == 2
        assert report.integrity.rebuilt_blocks == 2
        assert report.job == report.baseline  # rebuild is bit-for-bit

    def test_integrity_plan_deterministic(self):
        from repro.faults import StaleMetadata

        plan = self._plan_rot((1, 0), (4, 2), seed=9,
                              stale_metadata=(StaleMetadata(1),))
        a, b = _run(plan), _run(plan)
        assert a.job == b.job
        assert a.integrity == b.integrity

    def test_unknown_rot_block_rejected(self):
        with pytest.raises(ConfigError):
            _run(self._plan_rot((0, 10_000)))

    def test_unknown_rot_node_rejected(self):
        with pytest.raises(ConfigError):
            _run(self._plan_rot((999, 0)))

    def test_unknown_stale_block_rejected(self):
        from repro.faults import StaleMetadata

        with pytest.raises(ConfigError):
            _run(FaultPlan(stale_metadata=(StaleMetadata(10_000),)))

    def test_rot_on_non_holder_falls_back_to_primary(self):
        cluster, dataset = _fresh()
        holders = set(dataset.placement()[0])
        outsider = next(n for n in cluster.nodes if n not in holders)
        report = ChaosRunner(cluster, self._plan_rot((outsider, 0))).run(
            dataset, "hot", word_count_job()
        )
        assert report.integrity.corruptions_injected == 1
        assert report.integrity.fully_repaired
        assert report.output_matches_baseline

    def test_standing_scrub_reported_even_on_empty_plan(self):
        report = _run(FaultPlan())
        assert report.integrity.scrubbed_replicas > 0
        assert report.integrity.corruptions_injected == 0
        assert "Integrity summary" not in report.format()

    def test_integrity_section_in_report(self):
        report = _run(self._plan_rot((0, 0)))
        out = report.format()
        assert "Integrity summary" in out
        assert "corruptions repaired" in out

    def test_metastore_sees_validated_entries(self):
        from repro.faults import StaleMetadata

        plan = FaultPlan(seed=4, stale_metadata=(StaleMetadata(0),))
        store = DistributedMetaStore(num_nodes=3)
        report = _run(plan, metastore=store)
        assert report.output_matches_baseline
        assert report.integrity.rebuilt_blocks == 1


class TestIntegrityCli:
    def test_cli_bitrot_and_stale(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--bitrot", "1@0", "--stale", "1", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Integrity summary" in out
        assert "corruptions injected    : 1" in out
        assert "metadata blocks rebuilt : 1" in out

    def test_cli_restart_wave(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--restart-wave", "0", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "driver restarts         : 1" in out

    def test_cli_scrub_repairs(self, capsys):
        code = main(
            [
                "scrub", "--nodes", "6", "-n", "3000", "-k", "40",
                "--rot", "0@0", "--corrupt", "2", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Scrub report" in out
        assert "unrepairable     : 0" in out
        assert "repaired" in out

    def test_cli_scrub_clean(self, capsys):
        code = main(["scrub", "--nodes", "4", "-n", "2000", "-k", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt found    : 0" in out

    def test_cli_bad_rot_spec(self, capsys):
        code = main(["scrub", "--rot", "nonsense"])
        assert code == 2
        assert "expected NODE@BLOCK" in capsys.readouterr().err
