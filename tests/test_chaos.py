"""End-to-end chaos tests: the ISSUE acceptance criteria.

* Determinism — the same FaultPlan over the same seeded cluster yields an
  identical JobResult across two fresh runs.
* Output safety — killing a node mid-selection still produces the exact
  failure-free analysis output.
* Graceful degradation — a metadata shard outage downgrades only the
  affected blocks to locality scheduling; the job completes and records
  which blocks degraded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.cli import main
from repro.core.metastore import DistributedMetaStore
from repro.errors import ConfigError, SchedulingError
from repro.faults import (
    ChaosRunner,
    FaultPlan,
    MetaOutage,
    NodeCrash,
    RetryPolicy,
    SlowNode,
    TransientFaults,
    degraded_schedule,
    merge_assignments,
)
from repro.mapreduce.apps.word_count import word_count_job
from tests.conftest import make_records


def _fresh(num_nodes=8, seed=11):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 150, "cold": 50}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    return cluster, dataset


def _run(plan, *, metastore=None, retry=None, num_nodes=8):
    cluster, dataset = _fresh(num_nodes=num_nodes)
    runner = ChaosRunner(
        cluster, plan, metastore=metastore, retry=retry or RetryPolicy()
    )
    return runner.run(dataset, "hot", word_count_job())


class TestDeterminism:
    def test_same_plan_same_cluster_identical_result(self):
        plan = FaultPlan(
            seed=3,
            crashes=(NodeCrash(2, time=0.5),),
            transient=TransientFaults(0.15),
        )
        a = _run(plan)
        b = _run(plan)
        assert a.job == b.job
        assert repr(a.job) == repr(b.job)
        assert a.attempts_histogram == b.attempts_histogram
        assert a.wasted_seconds == b.wasted_seconds
        assert a.rescheduled_blocks == b.rescheduled_blocks

    def test_empty_plan_equals_baseline(self):
        report = _run(FaultPlan())
        assert report.job == report.baseline
        assert report.recovery_overhead == 0.0
        assert report.dead_nodes == [] and report.rescheduled_blocks == []


class TestCrashRecovery:
    def test_mid_selection_crash_output_intact(self):
        report = _run(FaultPlan(seed=1, crashes=(NodeCrash(2, time=0.5),)))
        assert report.output_matches_baseline
        assert report.dead_nodes == [2]
        assert report.re_replicated_bytes > 0
        assert report.makespan >= report.baseline.makespan
        # the dead node contributed nothing to the surviving selection
        assert 2 not in report.job.selection.local_data

    def test_two_crashes_survived(self):
        plan = FaultPlan(
            seed=2, crashes=(NodeCrash(1, time=0.3), NodeCrash(5, time=0.9))
        )
        report = _run(plan)
        assert report.output_matches_baseline
        assert report.dead_nodes == [1, 5]

    def test_transient_faults_retry_and_converge(self):
        report = _run(FaultPlan(seed=9, transient=TransientFaults(0.25)))
        assert report.output_matches_baseline
        assert report.summary().retried_tasks > 0
        assert report.wasted_seconds > 0

    def test_slow_node_only_stretches_makespan(self):
        report = _run(FaultPlan(slow_nodes=(SlowNode(0, factor=3.0),)))
        assert report.output_matches_baseline
        assert report.makespan >= report.baseline.makespan
        assert report.attempts_histogram == {
            1: report.summary().total_tasks
        }

    def test_unknown_crash_node_rejected(self):
        cluster, dataset = _fresh()
        with pytest.raises(ConfigError):
            ChaosRunner(cluster, FaultPlan(crashes=(NodeCrash(99),)))

    def test_summary_round_trip(self):
        report = _run(FaultPlan(seed=4, crashes=(NodeCrash(3, time=0.4),)))
        summary = report.summary()
        assert summary.makespan == report.makespan
        assert summary.dead_nodes == 1
        text = report.format()
        assert "Recovery summary" in text and "attempts" in text


class TestMetastoreDegradation:
    def _store(self, dataset, *, num_nodes=3, replication=1):
        datanet = DataNet.build(dataset, alpha=0.3)
        store = DistributedMetaStore(
            num_nodes=num_nodes, replication=replication
        )
        store.load_array(datanet.elasticmap)
        return store

    def test_shard_down_degrades_only_owned_blocks(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        expected = {
            bid
            for bid in store.block_ids
            if store.shard_map.owners(bid) == ["meta-0"]
        }
        store.fail_node("meta-0")
        _assignment, healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assert set(degraded) == expected
        assert not set(degraded) & set(healthy)

    def test_degraded_blocks_all_scheduled(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        store.fail_node("meta-0")
        assignment, healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assigned = {
            b for bs in assignment.blocks_by_node.values() for b in bs
        }
        # degraded blocks cannot be skipped (no metadata to prove absence)
        assert set(degraded) <= assigned

    def test_replicated_store_needs_no_degradation(self):
        cluster, dataset = _fresh()
        store = self._store(dataset, replication=2)
        store.fail_node("meta-0")
        _assignment, _healthy, degraded = degraded_schedule(
            store, dataset, "hot"
        )
        assert degraded == []

    def test_job_completes_with_shard_down(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        plan = FaultPlan(meta_outages=(MetaOutage("meta-0"),))
        runner = ChaosRunner(cluster, plan, metastore=store)
        report = runner.run(dataset, "hot", word_count_job())
        assert report.output_matches_baseline
        assert report.degraded_blocks  # which blocks fell back is recorded
        assert report.summary().degraded_blocks == len(report.degraded_blocks)

    def test_exclude_nodes_respected(self):
        cluster, dataset = _fresh()
        store = self._store(dataset)
        assignment, _h, _d = degraded_schedule(
            store, dataset, "hot", exclude_nodes=(0, 1)
        )
        assert not {0, 1} & set(assignment.blocks_by_node)


class TestMergeAssignments:
    def test_duplicate_block_rejected(self):
        cluster, dataset = _fresh()
        datanet = DataNet.build(dataset, alpha=0.3)
        a = datanet.schedule("hot")
        with pytest.raises(SchedulingError):
            merge_assignments(a, a)


class TestChaosCli:
    def test_cli_crash_run(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--kill", "2@0.5", "--flaky", "0.1", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Recovery summary" in out
        assert "dead nodes            : 1" in out

    def test_cli_meta_outage(self, capsys):
        code = main(
            [
                "chaos", "--nodes", "6", "-n", "3000", "-k", "40",
                "--meta-nodes", "3", "--meta-down", "meta-0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded blocks" in out

    def test_cli_bad_kill_spec(self, capsys):
        assert main(["chaos", "--kill", "nope"]) == 2
        assert "expected NODE@NUMBER" in capsys.readouterr().err
