"""Wave-granularity checkpoint/resume for the selection phase.

The acceptance bar: interrupting a job mid-wave and resuming from the
serialized checkpoint produces output byte-identical to the uninterrupted
run under the same seed, with the lost work reported rather than hidden.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.errors import ConfigError, JobError
from repro.faults import (
    ChaosRunner,
    DriverRestart,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    TransientFaults,
)
from repro.mapreduce import MapReduceEngine, WaveCheckpoint
from repro.mapreduce.apps.word_count import word_count_job
from tests.conftest import make_records


def _setup(seed=11, num_nodes=8):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 150, "cold": 50}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    datanet = DataNet.build(dataset, alpha=0.5)
    assignment = datanet.schedule("hot")
    engine = MapReduceEngine(cluster)
    profile = word_count_job().profile
    return cluster, dataset, assignment, engine, profile


def _num_waves(assignment):
    return max(len(b) for b in assignment.blocks_by_node.values())


class TestUninterrupted:
    def test_matches_run_selection(self):
        _c, dataset, assignment, engine, profile = _setup()
        plain = engine.run_selection(dataset, "hot", assignment, profile)
        wavey, checkpoint, wasted = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile
        )
        assert wasted == 0.0
        assert wavey.local_data == plain.local_data
        assert wavey.bytes_per_node == plain.bytes_per_node
        assert wavey.blocks_read == plain.blocks_read
        assert wavey.bytes_read == plain.bytes_read
        assert wavey.timing.node_times == plain.timing.node_times
        assert checkpoint.wave == _num_waves(assignment)

    def test_rejects_multislot_engine(self):
        cluster, dataset, assignment, _e, profile = _setup()
        fat = MapReduceEngine(cluster, map_slots=2)
        with pytest.raises(ConfigError):
            fat.run_selection_checkpointed(dataset, "hot", assignment, profile)


class TestInterruptAndResume:
    def test_resume_is_byte_identical(self):
        _c, dataset, assignment, engine, profile = _setup()
        uninterrupted = engine.run_selection(dataset, "hot", assignment, profile)
        restart = DriverRestart(wave=0, waste_fraction=0.5, restart_delay_s=2.0)
        interrupted, checkpoint, wasted = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, interrupt=restart
        )
        assert interrupted is None
        assert wasted > 0.0
        assert checkpoint.restarts == 1
        # the driver that resumes only has the durable bytes
        revived = WaveCheckpoint.from_bytes(checkpoint.to_bytes())
        resumed, final, _ = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, checkpoint=revived
        )
        assert resumed.local_data == uninterrupted.local_data
        assert resumed.bytes_per_node == uninterrupted.bytes_per_node
        # only time differs: lost work + restart delay are charged
        for node, t in uninterrupted.timing.node_times.items():
            assert resumed.timing.node_times[node] >= t

    def test_wasted_work_is_half_the_wave(self):
        _c, dataset, assignment, engine, profile = _setup()
        placement = dataset.placement()
        expected = 0.0
        for node, bids in assignment.blocks_by_node.items():
            if bids:
                base, _m, _n = engine.selection_task_cost(
                    dataset, "hot", placement, node, bids[0], profile
                )
                expected += 0.5 * base
        _sel, _cp, wasted = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, interrupt=DriverRestart(0)
        )
        assert wasted == pytest.approx(expected)

    def test_interrupt_past_end_completes(self):
        _c, dataset, assignment, engine, profile = _setup()
        beyond = DriverRestart(wave=_num_waves(assignment) + 5)
        selection, _cp, wasted = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, interrupt=beyond
        )
        assert selection is not None and wasted == 0.0

    def test_resume_under_transients_draws_same_coins(self):
        _c, dataset, assignment, engine, profile = _setup()
        plan = FaultPlan(seed=9, transient=TransientFaults(0.2))
        straight = engine.run_selection(
            dataset, "hot", assignment, profile, injector=FaultInjector(plan)
        )
        _n, cp, _w = engine.run_selection_checkpointed(
            dataset,
            "hot",
            assignment,
            profile,
            interrupt=DriverRestart(0, restart_delay_s=0.0, waste_fraction=0.0),
            injector=FaultInjector(plan),
        )
        resumed, _cp2, _ = engine.run_selection_checkpointed(
            dataset,
            "hot",
            assignment,
            profile,
            checkpoint=WaveCheckpoint.from_bytes(cp.to_bytes()),
            injector=FaultInjector(plan),
        )
        assert resumed.local_data == straight.local_data


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        _c, dataset, assignment, engine, profile = _setup()
        _sel, cp, _w = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, interrupt=DriverRestart(1)
        )
        clone = WaveCheckpoint.from_bytes(cp.to_bytes())
        assert clone.wave == cp.wave
        assert clone.queues == cp.queues
        assert clone.clocks == cp.clocks
        assert clone.restarts == cp.restarts
        assert clone.blocks_read == cp.blocks_read
        assert clone.bytes_read == cp.bytes_read
        assert clone.outputs == cp.outputs
        assert clone.to_bytes() == cp.to_bytes()

    def test_corrupt_blob_rejected(self):
        with pytest.raises(JobError):
            WaveCheckpoint.from_bytes(b"not json at all")
        with pytest.raises(JobError):
            WaveCheckpoint.from_bytes(b'{"dataset": "d"}')

    def test_mismatched_resume_rejected(self):
        _c, dataset, assignment, engine, profile = _setup()
        _sel, cp, _w = engine.run_selection_checkpointed(
            dataset, "hot", assignment, profile, interrupt=DriverRestart(0)
        )
        cp.sub_id = "cold"
        with pytest.raises(JobError):
            engine.run_selection_checkpointed(
                dataset, "hot", assignment, profile, checkpoint=cp
            )


class TestChaosRunnerRestarts:
    def _run(self, plan, seed=11):
        cluster = HDFSCluster(
            num_nodes=8,
            block_size=2048,
            replication=3,
            rng=np.random.default_rng(seed),
        )
        recs = make_records({"hot": 150, "cold": 50}, payload_len=30)
        dataset = cluster.write_dataset("d", recs)
        return ChaosRunner(cluster, plan).run(dataset, "hot", word_count_job())

    def test_restart_mid_job_output_intact(self):
        plan = FaultPlan(
            seed=5,
            driver_restarts=(DriverRestart(0, restart_delay_s=3.0),),
            transient=TransientFaults(0.1),
        )
        report = self._run(plan)
        assert report.output_matches_baseline
        assert report.integrity.driver_restarts == 1
        assert report.integrity.resume_wasted_seconds > 0.0
        assert report.makespan > report.baseline.makespan

    def test_multiple_restarts_deterministic(self):
        plan = FaultPlan(
            seed=7,
            driver_restarts=(DriverRestart(0), DriverRestart(1)),
        )
        a, b = self._run(plan), self._run(plan)
        assert a.job == b.job
        assert a.output_matches_baseline
        assert (
            a.integrity.resume_wasted_seconds == b.integrity.resume_wasted_seconds
        )

    def test_restart_plus_crash_rejected(self):
        plan = FaultPlan(
            seed=1,
            crashes=(NodeCrash(1, time=0.5),),
            driver_restarts=(DriverRestart(0),),
        )
        with pytest.raises(ConfigError):
            self._run(plan)
