"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_experiment_ids_accepted(self):
        parser = build_parser()
        for exp_id in list(EXPERIMENTS) + ["all"]:
            args = parser.parse_args(["experiment", exp_id])
            assert args.id == exp_id


class TestMetadataPlaneFlags:
    def test_serve_flags_accepted(self):
        args = build_parser().parse_args(
            ["serve", "--journal-replicas", "3", "--leader-crash",
             "--journal-crash", "--meta-partition",
             "--retry-jitter", "full", "--retry-max-elapsed", "30"]
        )
        assert args.journal_replicas == 3
        assert args.leader_crash and args.journal_crash and args.meta_partition
        assert args.retry_jitter == "full"
        assert args.retry_max_elapsed == 30.0

    def test_chaos_flags_accepted(self):
        args = build_parser().parse_args(
            ["chaos", "--retry-jitter", "full", "--retry-max-elapsed", "5",
             "--journal-replicas", "3", "--leader-crash"]
        )
        assert args.retry_jitter == "full"
        assert args.journal_replicas == 3

    def test_bad_jitter_mode_rejected_at_parse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--retry-jitter", "gaussian"])

    def test_negative_retry_budget_is_typed_error(self, capsys):
        assert main(["serve", "--retry-max-elapsed", "-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_zero_journal_replicas_is_typed_error(self, capsys):
        assert main(["serve", "--journal-replicas", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_journal_crash_needs_replicas(self, capsys):
        assert main(["serve", "--journal-crash"]) == 2
        assert "journal_replicas" in capsys.readouterr().err

    def test_leader_crash_drill_prints_digests(self, capsys):
        assert main(
            ["serve", "--jobs", "8", "--nodes", "8", "--appends", "1",
             "--journal-replicas", "3", "--leader-crash"]
        ) == 0
        out = capsys.readouterr().out
        assert "leadership changes" in out
        assert "metadata digest" in out
        assert "layout digest: " in out
        assert "3 journal replicas" in out


class TestInfo:
    def test_lists_experiments(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out


class TestTheory:
    def test_prints_fig2(self, capsys):
        assert main(["theory", "--trials", "5"]) == 0
        assert "Figure 2" in capsys.readouterr().out


class TestGenerateAndIndex:
    def test_roundtrip(self, tmp_path, capsys):
        tsv = tmp_path / "data.tsv"
        assert main(
            ["generate", "movielens", "-n", "2000", "-k", "50", "-o", str(tsv)]
        ) == 0
        assert tsv.exists()
        lines = tsv.read_text().strip().splitlines()
        assert len(lines) > 1000
        assert lines[0].count("\t") == 2

        assert main(["index", str(tsv), "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "ElasticMap" in out
        assert "representation ratio" in out

    def test_index_with_query(self, tmp_path, capsys):
        tsv = tmp_path / "data.tsv"
        main(["generate", "movielens", "-n", "1000", "-k", "20", "-o", str(tsv)])
        assert main(
            ["index", str(tsv), "--nodes", "4", "--query", "movie-00000"]
        ) == 0
        out = capsys.readouterr().out
        assert "movie-00000" in out
        assert "Eq. 6" in out

    def test_generate_github(self, tmp_path):
        tsv = tmp_path / "gh.tsv"
        assert main(["generate", "github", "-n", "500", "-o", str(tsv)]) == 0
        assert "Event" in tsv.read_text()

    def test_generate_worldcup(self, tmp_path):
        tsv = tmp_path / "wc.tsv"
        assert main(["generate", "worldcup", "-n", "500", "-k", "8", "-o", str(tsv)]) == 0
        assert "match-" in tsv.read_text()

    def test_index_missing_file_errors(self, capsys):
        assert main(["index", "/nonexistent/file.tsv"]) == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_small_fig1_runs_and_saves(self, tmp_path, capsys):
        assert main(
            ["experiment", "fig1", "--small", "--out", str(tmp_path)]
        ) == 0
        assert "Figure 1" in capsys.readouterr().out
        assert (tmp_path / "fig1.txt").exists()

    def test_small_table2(self, capsys):
        assert main(["experiment", "table2", "--small"]) == 0
        assert "Table II" in capsys.readouterr().out


class TestSimulateAndPlan:
    def test_simulate_small(self, capsys):
        assert main(["simulate", "--small", "--rows", "3", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "Concurrent batch" in out
        assert "legend" in out

    def test_plan(self, capsys):
        assert main(
            ["plan", "--blocks", "64", "--subdatasets", "500",
             "--nodes", "32", "--budget", "4mb"]
        ) == 0
        assert "Capacity plan" in capsys.readouterr().out

    def test_plan_impossible_budget_errors(self, capsys):
        assert main(
            ["plan", "--blocks", "5000", "--subdatasets", "5000",
             "--nodes", "32", "--budget", "1kb"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestTrace:
    _BASE = ["trace", "--nodes", "4", "-n", "3000", "-k", "30"]

    def _artifacts(self, out_dir):
        return sorted(p.name for p in out_dir.iterdir())

    def test_fault_free_trace_writes_valid_artifacts(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace_file

        out = tmp_path / "obs"
        assert main(self._BASE + ["--out", str(out)]) == 0
        assert self._artifacts(out) == [
            "events.jsonl", "metrics.txt", "trace.json",
        ]
        assert validate_chrome_trace_file(str(out / "trace.json")) > 0
        stdout = capsys.readouterr().out
        assert "traced job" in stdout and "trace.json valid" in stdout

    @pytest.mark.parametrize("workload", ["movielens", "github", "worldcup"])
    def test_all_workload_families_exit_zero(self, tmp_path, workload):
        out = tmp_path / workload
        args = self._BASE + ["--workload", workload, "--out", str(out)]
        if workload == "worldcup":
            args += ["-k", "8"]
        assert main(args) == 0
        assert (out / "trace.json").exists()

    def test_chaos_path_traces_attempts(self, tmp_path, capsys):
        import json

        out = tmp_path / "obs"
        assert main(
            self._BASE + ["--out", str(out), "--flaky", "0.2"]
        ) == 0
        assert "traced chaos run" in capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in (out / "events.jsonl").read_text().splitlines()
        ]
        categories = {
            r.get("category") for r in rows if r["type"] == "span"
        }
        assert "attempt" in categories and "run" in categories
        assert "spans[attempt]" in (out / "metrics.txt").read_text()

    def test_obs_flag_on_chaos(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(
            ["chaos", "--nodes", "4", "-n", "3000", "-k", "30",
             "--flaky", "0.2", "--obs", str(out)]
        ) == 0
        assert (out / "trace.json").exists()
        assert (out / "events.jsonl").exists()
        assert "observability artifacts" in capsys.readouterr().out

    def test_obs_flag_on_scrub(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(
            ["scrub", "--nodes", "4", "-n", "2000", "-k", "30",
             "--corrupt", "2", "--obs", str(out)]
        ) == 0
        assert "scrub_corrupt_found_total" in (out / "metrics.txt").read_text()

    def test_obs_flag_on_simulate(self, tmp_path):
        from repro.obs.export import validate_chrome_trace_file

        out = tmp_path / "obs"
        assert main(
            ["simulate", "--small", "--rows", "2", "--width", "40",
             "--obs", str(out)]
        ) == 0
        assert validate_chrome_trace_file(str(out / "trace.json")) > 0
