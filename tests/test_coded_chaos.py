"""Integration tests for coded redundancy: degraded reads, parity repair,
fragment-aware scheduling and the coded chaos drill."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import CodingSpec
from repro.core.bipartite import BipartiteGraph
from repro.core.datanet import DataNet
from repro.errors import ConfigError, UnrecoverableBlockError
from repro.faults import ChaosRunner, FaultPlan, NodeCrash
from repro.faults.plan import BitRot, DriverRestart, NetworkPartition
from repro.hdfs import CodedReader, FailureManager, HDFSCluster, Scrubber
from repro.mapreduce.apps.word_count import word_count_job
from tests.conftest import make_records


def _coded_cluster(seed: int = 11, *, num_nodes: int = 8, k: int = 4, m: int = 2):
    return HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
        coding=CodingSpec(k, m),
    )


def _records():
    return make_records({"hot": 150, "cold": 50}, payload_len=30)


def _replicated_reference():
    """The healthy replicated run every coded drill must match byte-for-byte."""
    cluster = HDFSCluster(
        num_nodes=8,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(11),
    )
    dataset = cluster.write_dataset("d", _records())
    runner = ChaosRunner(cluster, FaultPlan(seed=3))
    return runner.run(dataset, "hot", word_count_job())


# -- the acceptance drill ----------------------------------------------------------


class TestCodedChaosDrill:
    def _drill(self):
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        plan = FaultPlan(
            seed=3,
            crashes=(NodeCrash(2, time=0.4),),
            bit_rots=(BitRot(node=1, block=0), BitRot(node=4, block=2)),
            partitions=(NetworkPartition(nodes=(5, 6), start=0.2, heals_at=0.9),),
        )
        return ChaosRunner(cluster, plan).run(dataset, "hot", word_count_job())

    def test_output_byte_identical_to_replicated_run(self):
        """Crash + bit rot + partition under (4,2): same bytes out."""
        report = self._drill()
        reference = _replicated_reference()
        assert report.job.output == reference.job.output
        assert report.output_matches_baseline

    def test_recovery_is_reconstruction_not_re_replication(self):
        report = self._drill()
        assert report.reconstructions > 0
        assert report.reconstructed_bytes > 0
        assert report.decode_bytes > 0
        assert report.re_replicated_bytes == 0

    def test_degraded_reads_counted(self):
        report = self._drill()
        assert report.degraded_reads > 0
        assert report.quarantined_blocks == 0

    def test_summary_renders_coded_section(self):
        text = self._drill().summary().format()
        assert "fragment reconstructions" in text
        assert "decoded stripe bytes" in text
        assert "degraded reads" in text

    def test_drill_is_deterministic(self):
        first, second = self._drill(), self._drill()
        assert first.job.output == second.job.output
        assert first.summary() == second.summary()

    def test_driver_restarts_rejected_with_coding(self):
        cluster = _coded_cluster()
        plan = FaultPlan(seed=0, driver_restarts=(DriverRestart(1),))
        with pytest.raises(ConfigError, match="driver restarts"):
            ChaosRunner(cluster, plan)


# -- degraded reads ----------------------------------------------------------------


class TestDegradedReads:
    def test_bit_rot_with_healing_partition(self):
        """Rot + a partition that heals mid-run: degraded reads, same bytes."""
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        holders = dataset.placement()[0]
        plan = FaultPlan(
            seed=5,
            bit_rots=(BitRot(node=holders[0], block=0),),
            partitions=(
                NetworkPartition(nodes=(holders[1],), start=0.0, heals_at=0.8),
            ),
        )
        report = ChaosRunner(cluster, plan).run(dataset, "hot", word_count_job())
        assert report.job.output == _replicated_reference().job.output
        assert report.degraded_reads > 0
        assert report.quarantined_blocks == 0

    def test_reader_decodes_through_parity(self):
        cluster = _coded_cluster()
        cluster.write_dataset("d", _records())
        holders = cluster.namenode.block_locations("d", 0)
        cluster.corrupt_replica("d", holders[0], 0)
        reader = CodedReader(cluster)
        cost = reader.read_cost(
            "d", 0, holders[1], tuple(holders),
            nbytes=cluster.coded_block("d", 0).payload_len,
            read_local=lambda b: b * 1e-6,
            read_remote=lambda b: b * 3e-6,
            write_local=lambda b: b * 1e-6,
        )
        assert cost > 0
        assert reader.degraded_reads == 1
        assert reader.detected == 1
        assert reader.decoded_bytes == cluster.coded_block("d", 0).decode_read_bytes

    def test_quarantine_when_more_than_m_unreachable(self):
        cluster = _coded_cluster()
        cluster.write_dataset("d", _records())
        holders = cluster.namenode.block_locations("d", 0)
        for node in holders[:3]:  # m = 2, so 3 rotten fragments is fatal
            cluster.corrupt_replica("d", node, 0)
        reader = CodedReader(cluster)
        with pytest.raises(UnrecoverableBlockError):
            reader.read_cost(
                "d", 0, holders[3], tuple(holders),
                nbytes=1,
                read_local=lambda b: 0.0,
                read_remote=lambda b: 0.0,
                write_local=lambda b: 0.0,
            )
        assert len(reader.quarantined) == 1
        record = reader.quarantined[0]
        assert record.needed == 4
        assert len(record.available) == 3


# -- parity repair -----------------------------------------------------------------


class TestParityRepair:
    def test_scrubber_rebuilds_fragment_from_parity(self):
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        victim = dataset.placement()[0][0]
        cluster.corrupt_replica("d", victim, 0)
        report = Scrubber(cluster, strict=False).scrub("d")
        assert report.corrupt_found == 1
        assert report.repaired == 1
        assert report.reconstructed == 1
        assert report.decode_bytes == cluster.coded_block("d", 0).decode_read_bytes
        assert cluster.datanodes[victim].verify_fragment("d", 0)

    def test_scrub_sources_prefer_healthy_nodes(self):
        """Satellite: repair-source ranking is health-first."""
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        holders = dataset.placement()[0]
        cluster.corrupt_replica("d", holders[0], 0)
        sick = holders[1]
        health = {n: 1.0 for n in cluster.nodes}
        health[sick] = 0.05
        report = Scrubber(cluster, strict=False, health=health).scrub("d")
        event = next(e for e in report.events if hasattr(e, "sources"))
        assert sick not in event.sources

    def test_node_loss_reconstructs_at_same_index(self):
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        before = dataset.placement()[0]
        dead = before[2]
        fm = FailureManager(cluster)
        fm.fail_node(dead)
        after = cluster.namenode.block_locations("d", 0)
        assert after[2] != dead
        assert [h for i, h in enumerate(after) if i != 2] == [
            h for i, h in enumerate(before) if i != 2
        ]
        assert fm.reconstructions
        assert fm.bytes_reconstructed() > 0
        assert fm.decode_bytes_read() > 0

    def test_quarantine_past_decode_floor(self):
        """On a 6-node (4,2) cluster there are no spares: the third node
        loss drops a stripe below k readable fragments and must fail
        cleanly with a quarantine record, not garbage output."""
        cluster = _coded_cluster(num_nodes=6)
        cluster.write_dataset("d", _records())
        fm = FailureManager(cluster)
        fm.fail_node(0)
        fm.fail_node(1)
        with pytest.raises(UnrecoverableBlockError):
            fm.fail_node(2)
        assert fm.quarantined
        assert fm.quarantined[0].needed == 4


# -- fragments as the schedulable unit ---------------------------------------------


class TestFragmentScheduling:
    def test_bipartite_needed_accessor(self):
        graph = BipartiteGraph(
            {0: [0, 1, 2, 3, 4, 5]}, {0: 10}, needed={0: 4}
        )
        assert graph.needed_of(0) == 4

    def test_needed_cannot_exceed_holders(self):
        with pytest.raises(ConfigError):
            BipartiteGraph({0: [0, 1]}, {0: 10}, needed={0: 4})

    def test_restrict_strands_below_decode_floor(self):
        graph = BipartiteGraph(
            {0: [0, 1, 2, 3, 4, 5], 1: [0, 1, 2]},
            {0: 10, 1: 5},
            needed={0: 4},
        )
        sub, stranded = graph.restrict([0, 1, 2])
        assert stranded == [0]  # 3 reachable < k=4
        assert sub.blocks == [1]  # replicated block still schedulable

    def test_datanet_threads_fragment_floor(self):
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        datanet = DataNet.build(dataset)
        graph = datanet.bipartite_graph("hot", skip_absent=False)
        assert all(graph.needed_of(b) == 4 for b in graph.blocks)

    def test_exclusion_below_floor_rejected(self):
        cluster = _coded_cluster()
        dataset = cluster.write_dataset("d", _records())
        datanet = DataNet.build(dataset)
        holders = dataset.placement()[0]
        with pytest.raises(ConfigError, match="fewer than"):
            datanet.bipartite_graph(
                "hot", skip_absent=False, exclude=holders[:3]
            )


# -- CLI ---------------------------------------------------------------------------


class TestCodedCLI:
    def test_chaos_coding_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "--nodes", "8", "-n", "2000", "-k", "20",
             "--coding", "4,2", "--bitrot", "1@0"]
        )
        assert code == 0
        assert "fragment reconstructions" in capsys.readouterr().out

    def test_scrub_coding_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["scrub", "--nodes", "8", "-n", "2000", "-k", "20",
             "--coding", "4,2", "--rot", "0@0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fragment reconstructions" in out
        assert "reconstructed fragment" in out

    def test_malformed_coding_rejected_at_parse_time(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--nodes", "8", "--coding", "4x2"]) == 2
        assert "--coding expects" in capsys.readouterr().err

    def test_infeasible_coding_rejected_at_parse_time(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--nodes", "4", "--coding", "4,2"]) == 2
        assert "distinct nodes" in capsys.readouterr().err
