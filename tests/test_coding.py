"""Tests for the GF(256) Reed–Solomon codec and coded-block layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import (
    CodingSpec,
    RSCodec,
    gf_div,
    gf_inv,
    gf_mul,
    join_stripe,
    parse_coding,
    split_stripe,
    validate_coding,
)
from repro.errors import CodingError, ConfigError, ReplicationError
from repro.hdfs import ErasureCodedBlock, FragmentPlacement, HDFSCluster
from tests.conftest import make_records


# -- GF(256) arithmetic ------------------------------------------------------------


class TestGF256:
    def test_mul_identity_and_zero(self):
        for a in (1, 7, 113, 255):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_inverse_round_trip(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_div_is_mul_by_inverse(self):
        assert gf_div(gf_mul(37, 91), 91) == 37

    def test_div_by_zero_rejected(self):
        with pytest.raises(CodingError):
            gf_inv(0)


# -- spec parsing & validation (satellite: parse-time (k, m) checks) ---------------


class TestCodingSpec:
    def test_valid_spec(self):
        spec = CodingSpec(4, 2)
        assert spec.n == 6
        assert spec.storage_overhead == pytest.approx(1.5)
        assert str(spec) == "4,2"

    @pytest.mark.parametrize("k,m", [(0, 2), (-1, 2), (4, 0), (4, -3)])
    def test_k_and_m_floors(self, k, m):
        with pytest.raises(ConfigError):
            CodingSpec(k, m)

    def test_gf256_fragment_ceiling(self):
        with pytest.raises(ConfigError):
            CodingSpec(200, 100)

    def test_parse_coding(self):
        assert parse_coding("4,2") == CodingSpec(4, 2)
        assert parse_coding(" 6 , 3 ") == CodingSpec(6, 3)

    @pytest.mark.parametrize("text", ["4", "4,2,1", "4x2", "a,b", "4,", ""])
    def test_parse_coding_malformed(self, text):
        with pytest.raises(ConfigError):
            parse_coding(text)

    def test_validate_against_cluster_size(self):
        spec = CodingSpec(4, 2)
        assert validate_coding(spec, 6) is spec
        with pytest.raises(ConfigError, match="distinct nodes"):
            validate_coding(spec, 5)

    def test_cluster_constructor_validates(self):
        with pytest.raises(ConfigError):
            HDFSCluster(
                num_nodes=4,
                block_size=4096,
                rng=np.random.default_rng(0),
                coding=CodingSpec(4, 2),
            )


# -- striping ----------------------------------------------------------------------


class TestStriping:
    def test_split_join_round_trip(self):
        payload = b"hello coded world"
        shards = split_stripe(payload, 4)
        assert len(shards) == 4
        assert len({len(s) for s in shards}) == 1
        assert join_stripe(shards, len(payload)) == payload

    def test_split_pads_tail_with_zeros(self):
        shards = split_stripe(b"abcde", 3)
        assert b"".join(shards) == b"abcde\x00"

    def test_empty_payload(self):
        shards = split_stripe(b"", 3)
        assert join_stripe(shards, 0) == b""

    def test_join_refuses_impossible_length(self):
        with pytest.raises(CodingError):
            join_stripe([b"ab", b"cd"], 10)


# -- codec -------------------------------------------------------------------------


class TestRSCodec:
    def test_systematic_data_fragments_verbatim(self):
        codec = RSCodec(4, 2)
        payload = bytes(range(64))
        fragments = codec.encode(payload)
        assert len(fragments) == 6
        assert b"".join(fragments[:4])[: len(payload)] == payload

    def test_all_fragments_equal_length(self):
        fragments = RSCodec(3, 2).encode(b"0123456789")
        assert len({len(f) for f in fragments}) == 1

    def test_parity_only_decode(self):
        codec = RSCodec(2, 2)
        payload = b"parity can stand in for data"
        frags = codec.encode(payload)
        decoded = codec.reconstruct(
            {2: frags[2], 3: frags[3]}, len(payload), indices=[2, 3]
        )
        assert decoded == payload

    def test_too_few_fragments_rejected(self):
        codec = RSCodec(4, 2)
        frags = codec.encode(b"x" * 40)
        with pytest.raises(CodingError):
            codec.reconstruct({0: frags[0], 1: frags[1]}, 40)

    def test_missing_forced_index_rejected(self):
        codec = RSCodec(2, 1)
        frags = codec.encode(b"x" * 8)
        with pytest.raises(CodingError, match="not available"):
            codec.reconstruct({0: frags[0]}, 8, indices=[0, 2])

    def test_mismatched_fragment_lengths_rejected(self):
        codec = RSCodec(2, 1)
        frags = codec.encode(b"x" * 8)
        with pytest.raises(CodingError, match="lengths disagree"):
            codec.reconstruct({0: frags[0], 1: frags[1][:-1]}, 8, indices=[0, 1])

    def test_generator_matrix_cached_per_geometry(self):
        assert RSCodec(4, 2).matrix is RSCodec(4, 2).matrix

    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.binary(min_size=0, max_size=200),
        k=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_any_k_subset_round_trips(self, payload, k, m, data):
        """Core invariant: ANY k of the k+m fragments decode byte-identically."""
        codec = RSCodec(k, m)
        fragments = codec.encode(payload)
        subset = data.draw(
            st.permutations(range(k + m)).map(lambda p: sorted(p[:k]))
        )
        decoded = codec.reconstruct(
            {i: fragments[i] for i in subset}, len(payload), indices=subset
        )
        assert decoded == payload


# -- fragment placement ------------------------------------------------------------


class TestFragmentPlacement:
    def test_positional_distinct_nodes(self):
        policy = FragmentPlacement(6, num_racks=4)
        placed = policy.place(0, list(range(8)))
        assert len(placed) == 6
        assert len(set(placed)) == 6

    def test_consecutive_fragments_change_racks(self):
        policy = FragmentPlacement(6, num_racks=4)
        placed = policy.place(3, list(range(8)))
        racks = [policy.rack_of(n, 8) for n in placed]
        assert all(a != b for a, b in zip(racks, racks[1:]))

    def test_rack_loss_bounded(self):
        """Losing one rack takes at most ceil(n/racks) fragments of a stripe."""
        policy = FragmentPlacement(6, num_racks=4)
        for block_id in range(16):
            placed = policy.place(block_id, list(range(12)))
            per_rack: dict[int, int] = {}
            for node in placed:
                rk = policy.rack_of(node, 12)
                per_rack[rk] = per_rack.get(rk, 0) + 1
            assert max(per_rack.values()) <= 2  # ceil(6/4)

    def test_deterministic(self):
        policy = FragmentPlacement(5, num_racks=4)
        assert policy.place(7, list(range(9))) == policy.place(7, list(range(9)))

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ReplicationError):
            FragmentPlacement(6, num_racks=4).place(0, [0, 1, 2])


# -- coded block -------------------------------------------------------------------


def _coded_cluster(seed: int = 11, **kw) -> HDFSCluster:
    defaults = dict(
        num_nodes=8,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
        coding=CodingSpec(4, 2),
    )
    defaults.update(kw)
    return HDFSCluster(**defaults)


class TestErasureCodedBlock:
    def test_stripe_geometry(self):
        cluster = _coded_cluster()
        ds = cluster.write_dataset("d", make_records({"hot": 40}, payload_len=30))
        ecb = cluster.coded_block("d", 0)
        assert ecb.total_fragment_bytes == ecb.fragment_nbytes * 6
        assert ecb.decode_read_bytes == ecb.fragment_nbytes * 4
        assert ecb.payload_len <= ecb.fragment_nbytes * 4
        assert ds.num_blocks >= 1

    def test_any_k_subset_matches_systematic(self):
        cluster = _coded_cluster()
        cluster.write_dataset("d", make_records({"hot": 40}, payload_len=30))
        ecb = cluster.coded_block("d", 0)
        healthy = ecb.reconstruct_payload(range(4))
        assert ecb.reconstruct_payload([1, 2, 4, 5]) == healthy
        assert ecb.reconstruct_payload([0, 2, 3, 5]) == healthy

    def test_fragment_index_bounds(self):
        cluster = _coded_cluster()
        cluster.write_dataset("d", make_records({"hot": 40}, payload_len=30))
        ecb = cluster.coded_block("d", 0)
        with pytest.raises(CodingError):
            ecb.fragment(6)
        with pytest.raises(CodingError):
            ecb.fragment_checksum(-1)

    def test_coded_storage_cheaper_than_replication(self):
        records = make_records({"hot": 80, "cold": 40}, payload_len=30)
        coded = _coded_cluster()
        coded_ds = coded.write_dataset("d", records)
        replicated = HDFSCluster(
            num_nodes=8,
            block_size=2048,
            replication=3,
            rng=np.random.default_rng(11),
        )
        rep_ds = replicated.write_dataset("d", records)
        coded_phys = sum(
            coded.coded_block("d", b).total_fragment_bytes
            for b in range(coded_ds.num_blocks)
        )
        rep_phys = 3 * rep_ds.total_bytes
        assert coded_phys < rep_phys
