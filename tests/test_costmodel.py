"""Tests for the cluster cost model and application profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mapreduce.costmodel import PROFILES, AppProfile, ClusterCostModel


class TestClusterCostModel:
    def test_read_local_linear(self):
        c = ClusterCostModel(disk_read_bps=100e6)
        assert c.read_local(100e6) == pytest.approx(1.0)
        assert c.read_local(50e6) == pytest.approx(0.5)

    def test_remote_read_slower_than_local(self):
        c = ClusterCostModel()
        assert c.read_remote(1_000_000) > c.read_local(1_000_000)

    def test_transfer(self):
        c = ClusterCostModel(network_bps=100e6)
        assert c.transfer(100e6) == pytest.approx(1.0)

    def test_data_scale_multiplies_all_io(self):
        base = ClusterCostModel(data_scale=1.0)
        scaled = ClusterCostModel(data_scale=1024.0)
        for method in ("read_local", "read_remote", "write_local", "transfer"):
            assert getattr(scaled, method)(1000) == pytest.approx(
                1024 * getattr(base, method)(1000)
            )

    def test_write_local(self):
        c = ClusterCostModel(disk_write_bps=60e6)
        assert c.write_local(60e6) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(disk_read_bps=0),
            dict(disk_write_bps=-1),
            dict(network_bps=0),
            dict(remote_read_penalty=0.5),
            dict(task_overhead_s=-1),
            dict(job_overhead_s=-0.1),
            dict(data_scale=0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            ClusterCostModel(**kw)


class TestAppProfile:
    def test_map_cpu_seconds(self):
        p = AppProfile(name="x", cpu_cost_per_byte=1e-6, cpu_cost_per_record=1e-3)
        assert p.map_cpu_seconds(1_000_000, 100) == pytest.approx(1.0 + 0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AppProfile(name="", cpu_cost_per_byte=1e-6)
        with pytest.raises(ConfigError):
            AppProfile(name="x", cpu_cost_per_byte=-1.0)

    def test_paper_app_ordering(self):
        """Compute weights must preserve Fig. 5a's improvement ordering:
        moving_average < word_count <= histogram < top_k_search."""
        mavg = PROFILES["moving_average"].cpu_cost_per_byte
        wc = PROFILES["word_count"].cpu_cost_per_byte
        hist = PROFILES["histogram"].cpu_cost_per_byte
        topk = PROFILES["top_k_search"].cpu_cost_per_byte
        assert mavg < wc <= hist < topk

    def test_all_profiles_named_consistently(self):
        for key, profile in PROFILES.items():
            assert profile.name == key
