"""Integration tests for the DataNet facade over the HDFS substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.core.bucketizer import BucketSpec
from repro.errors import ConfigError
from tests.conftest import make_records


@pytest.fixture
def indexed(small_cluster):
    recs = make_records({"hot": 150, "warm": 60, "cold": 10}, payload_len=40)
    dataset = small_cluster.write_dataset("d", recs)
    datanet = DataNet.build(
        dataset, alpha=0.5, spec=BucketSpec.for_block_size(small_cluster.block_size)
    )
    return dataset, datanet


class TestBuild:
    def test_covers_all_blocks(self, indexed):
        dataset, datanet = indexed
        assert datanet.num_blocks == dataset.num_blocks

    def test_build_stats_attached(self, indexed):
        _, datanet = indexed
        stats = datanet.build_stats
        assert stats.blocks_built == datanet.num_blocks
        assert stats.records_scanned == 220

    def test_estimate_close_to_ground_truth(self, indexed):
        dataset, datanet = indexed
        for sid in ("hot", "warm"):
            true = dataset.subdataset_total_bytes(sid)
            est = datanet.estimate_total_size(sid)
            assert est == pytest.approx(true, rel=0.5)

    def test_blocks_containing_superset_of_truth(self, indexed):
        dataset, datanet = indexed
        truth = set(dataset.subdataset_bytes_per_block("hot"))
        # no false negatives: every block truly holding data is reported
        assert truth <= set(datanet.blocks_containing("hot"))

    def test_budget_mode(self, small_cluster):
        recs = make_records({"a": 50, "b": 50}, payload_len=30)
        dataset = small_cluster.write_dataset("d2", recs)
        datanet = DataNet.build(dataset, alpha=None, budget_bits_per_block=10**6)
        assert datanet.estimate_total_size("a") > 0

    def test_placement_mismatch_rejected(self, indexed):
        dataset, datanet = indexed
        with pytest.raises(ConfigError):
            DataNet(datanet.elasticmap, placement={})


class TestBipartiteGraphConstruction:
    def test_skip_absent_drops_empty_blocks(self, indexed):
        dataset, datanet = indexed
        g_all = datanet.bipartite_graph("cold", skip_absent=False)
        g_skip = datanet.bipartite_graph("cold", skip_absent=True)
        assert g_all.num_blocks == dataset.num_blocks
        assert g_skip.num_blocks <= g_all.num_blocks

    def test_weights_match_metadata(self, indexed):
        _, datanet = indexed
        g = datanet.bipartite_graph("hot", skip_absent=True)
        weights = datanet.elasticmap.block_weights("hot")
        for b in g.blocks:
            assert g.weight(b) == weights[b]

    def test_all_cluster_nodes_present(self, indexed):
        _, datanet = indexed
        g = datanet.bipartite_graph("hot", skip_absent=True)
        assert g.num_nodes == 8


class TestSchedule:
    def test_greedy_assignment_complete(self, indexed):
        dataset, datanet = indexed
        a = datanet.schedule("hot", skip_absent=False)
        assert a.num_tasks == dataset.num_blocks

    def test_greedy_beats_nothing_scheduled(self, indexed):
        _, datanet = indexed
        a = datanet.schedule("hot")
        assert a.max_workload > 0

    def test_optimal_method(self, indexed):
        _, datanet = indexed
        a = datanet.schedule("hot", method="optimal")
        assert a.remote_assignments == 0

    def test_optimal_rejects_capacities(self, indexed):
        _, datanet = indexed
        with pytest.raises(ConfigError):
            datanet.schedule("hot", method="optimal", capacities={0: 1.0})

    def test_unknown_method(self, indexed):
        _, datanet = indexed
        with pytest.raises(ConfigError):
            datanet.schedule("hot", method="magic")

    def test_heterogeneous_capacities(self, indexed):
        _, datanet = indexed
        caps = {n: 1.0 for n in datanet.nodes}
        caps[0] = 4.0
        a = datanet.schedule("hot", capacities=caps, skip_absent=False)
        assert a.num_tasks > 0

    def test_balanced_vs_truth(self, indexed):
        """Scheduling with metadata weights is no worse on *true* bytes
        than the weight-blind stock scheduler (at this toy scale the
        sub-dataset spans fewer blocks than there are nodes, so perfect
        balance is impossible for anyone)."""
        from repro.mapreduce.scheduler import LocalityScheduler

        dataset, datanet = indexed
        truth = dataset.subdataset_bytes_per_block("hot")

        def true_max(assignment):
            return max(
                sum(truth.get(b, 0) for b in blocks)
                for blocks in assignment.blocks_by_node.values()
            )

        aware = datanet.schedule("hot", skip_absent=False)
        stock = LocalityScheduler().schedule(
            datanet.bipartite_graph("hot", skip_absent=False)
        )
        assert true_max(aware) <= true_max(stock) + max(truth.values())


class TestAccounting:
    def test_memory_positive(self, indexed):
        _, datanet = indexed
        assert datanet.memory_bytes() > 0

    def test_representation_ratio(self, indexed):
        dataset, datanet = indexed
        ratio = datanet.representation_ratio(dataset.total_bytes)
        assert ratio > 1  # metadata far smaller than data

    def test_accuracy_reasonable(self, indexed):
        dataset, datanet = indexed
        chi = datanet.accuracy(dataset.subdataset_ids(), dataset.total_bytes)
        assert 0.5 < chi <= 1.0


class TestPersistence:
    def test_save_load_roundtrip(self, indexed, tmp_path):
        dataset, datanet = indexed
        path = str(tmp_path / "meta.datanet")
        written = datanet.save(path)
        assert written > 0
        restored = DataNet.load(path)
        assert restored.num_blocks == datanet.num_blocks
        for sid in ("hot", "warm", "cold"):
            assert restored.estimate_total_size(sid) == datanet.estimate_total_size(sid)
            assert restored.blocks_containing(sid) == datanet.blocks_containing(sid)

    def test_restored_instance_schedules(self, indexed, tmp_path):
        dataset, datanet = indexed
        path = str(tmp_path / "meta.datanet")
        datanet.save(path)
        restored = DataNet.load(path)
        a = restored.schedule("hot", skip_absent=False)
        b = datanet.schedule("hot", skip_absent=False)
        assert a.blocks_by_node == b.blocks_by_node

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"not a datanet file at all")
        with pytest.raises(ConfigError):
            DataNet.load(str(bad))

    def test_load_rejects_truncation(self, indexed, tmp_path):
        _dataset, datanet = indexed
        path = tmp_path / "meta.datanet"
        datanet.save(str(path))
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(Exception):
            DataNet.load(str(path))
