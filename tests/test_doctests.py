"""Execute the doctests embedded in public-API docstrings.

Keeps the documentation honest: every ``>>>`` example in these modules is
run as part of the suite.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.bloom
import repro.core.bucketizer
import repro.core.builder
import repro.metrics.reporting
import repro.obs.metrics
import repro.units
import repro.workloads.mixer

MODULES = [
    repro.units,
    repro.core.bloom,
    repro.core.bucketizer,
    repro.core.builder,
    repro.metrics.reporting,
    repro.obs.metrics,
    repro.workloads.mixer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
