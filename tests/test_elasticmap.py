"""Tests for BlockElasticMap / ElasticMapArray (paper Section III, Eqs. 5-6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter, bits_per_element
from repro.core.bucketizer import BucketSeparator
from repro.core.elasticmap import BlockElasticMap, ElasticMapArray, MemoryModel
from repro.errors import ConfigError, MetadataError
from repro.units import KiB


def _block_map(block_id: int, dominant: dict, tail: list, **kw) -> BlockElasticMap:
    bloom = BloomFilter(capacity=max(len(tail), 1), error_rate=0.01, seed=block_id)
    bloom.update(tail)
    return BlockElasticMap(block_id, dominant, bloom, **kw)


class TestMemoryModel:
    def test_eq5_all_in_bloom(self):
        model = MemoryModel(hashmap_bits_per_entry=85, load_factor=1.0, bloom_error_rate=0.01)
        # alpha=0: every sub-dataset pays only the bloom cost
        assert model.cost_bits(1000, 0.0) == pytest.approx(
            1000 * bits_per_element(0.01)
        )

    def test_eq5_all_in_hashmap(self):
        model = MemoryModel(hashmap_bits_per_entry=85, load_factor=0.5)
        assert model.cost_bits(100, 1.0) == pytest.approx(100 * 85 / 0.5)

    def test_eq5_mixture_monotonic_in_alpha(self):
        model = MemoryModel()
        costs = [model.cost_bits(1000, a / 10) for a in range(11)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_paper_bits_example(self):
        """Paper: hash map ~85 bits vs bloom ~10 bits per sub-dataset."""
        model = MemoryModel(hashmap_bits_per_entry=85, load_factor=1.0, bloom_error_rate=0.01)
        hash_only = model.cost_bits(1, 1.0)
        bloom_only = model.cost_bits(1, 0.0)
        assert hash_only == pytest.approx(85)
        assert bloom_only == pytest.approx(9.585, abs=0.01)

    def test_max_hashmap_entries_inverts_cost(self):
        model = MemoryModel()
        m = 500
        for alpha in (0.1, 0.3, 0.7):
            budget = model.cost_bits(m, alpha)
            got = model.max_hashmap_entries(budget, m)
            assert got == pytest.approx(alpha * m, abs=2)

    def test_max_hashmap_entries_clamped(self):
        model = MemoryModel()
        assert model.max_hashmap_entries(10**12, 50) == 50
        assert model.max_hashmap_entries(0.0, 50) == 0

    @pytest.mark.parametrize(
        "kw",
        [
            dict(hashmap_bits_per_entry=0),
            dict(load_factor=0.0),
            dict(load_factor=1.5),
            dict(bloom_error_rate=0.0),
            dict(bloom_error_rate=1.0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            MemoryModel(**kw)

    def test_cost_bits_validates_inputs(self):
        model = MemoryModel()
        with pytest.raises(ConfigError):
            model.cost_bits(-1, 0.5)
        with pytest.raises(ConfigError):
            model.cost_bits(10, 1.5)


class TestBlockElasticMap:
    def test_exact_query(self):
        bm = _block_map(0, {"big": 5000}, ["small-1", "small-2"])
        assert bm.query("big") == (5000, "exact")

    def test_approx_query_returns_delta(self):
        bm = _block_map(0, {"big": 5000}, ["small-1"])
        size, kind = bm.query("small-1")
        assert kind == "approx"
        assert size == bm.delta == 5000  # delta = min hashmap value

    def test_absent_query(self):
        bm = _block_map(0, {"big": 5000}, ["small-1"])
        size, kind = bm.query("never-stored-xyz")
        # absent, or (rarely) a bloom false positive
        assert kind in ("absent", "approx")

    def test_contains(self):
        bm = _block_map(0, {"big": 5000}, ["small-1"])
        assert "big" in bm and "small-1" in bm

    def test_delta_defaults_without_hashmap(self):
        bm = _block_map(0, {}, ["a", "b"])
        assert bm.delta == BlockElasticMap.DEFAULT_DELTA

    def test_explicit_delta(self):
        bm = _block_map(0, {"big": 5000}, ["a"], delta=42)
        assert bm.query("a") == (42, "approx")

    def test_from_separation(self):
        sep = BucketSeparator()
        sep.observe("huge", 40 * KiB)
        for i in range(5):
            sep.observe(f"tiny-{i}", 50)
        res = sep.separate(alpha=0.2)
        bm = BlockElasticMap.from_separation(3, res)
        assert bm.block_id == 3
        assert bm.query("huge") == (40 * KiB, "exact")
        assert bm.query("tiny-0")[1] == "approx"

    def test_memory_bits_accounts_both_parts(self):
        bm = _block_map(0, {"a": 100, "b": 200}, ["c", "d", "e"])
        model = bm.memory_model
        expected_hash = 2 * model.hashmap_bits_per_entry / model.load_factor
        assert bm.memory_bits() == pytest.approx(expected_hash + bm.bloom.memory_bits)

    def test_modeled_memory_bits(self):
        bm = _block_map(0, {"a": 100}, ["b", "c", "d"])
        got = bm.modeled_memory_bits(4)
        assert got == pytest.approx(bm.memory_model.cost_bits(4, 0.25))

    def test_modeled_memory_rejects_undercount(self):
        bm = _block_map(0, {"a": 1, "b": 2}, [])
        with pytest.raises(MetadataError):
            bm.modeled_memory_bits(1)

    def test_dominant_stats(self):
        bm = _block_map(0, {"a": 100, "b": 200}, ["c"])
        assert bm.num_dominant == 2
        assert bm.dominant_bytes == 300

    def test_validation(self):
        with pytest.raises(ConfigError):
            _block_map(-1, {}, [])
        with pytest.raises(ConfigError):
            _block_map(0, {"a": 5}, [], delta=0)


class TestElasticMapArray:
    def _array(self) -> ElasticMapArray:
        return ElasticMapArray(
            [
                _block_map(0, {"hot": 10_000, "warm": 2_000}, ["cold-1", "cold-2"]),
                _block_map(1, {"hot": 8_000}, ["warm", "cold-1"]),
                _block_map(2, {"other": 3_000}, []),
            ]
        )

    def test_len_and_iteration(self):
        arr = self._array()
        assert len(arr) == 3
        assert arr.block_ids == [0, 1, 2]
        assert [b.block_id for b in arr] == [0, 1, 2]

    def test_getitem(self):
        arr = self._array()
        assert arr[1].block_id == 1
        with pytest.raises(MetadataError):
            arr[99]

    def test_rejects_duplicate_block_ids(self):
        with pytest.raises(MetadataError):
            ElasticMapArray([_block_map(0, {}, []), _block_map(0, {}, [])])

    def test_distribution_mixes_exact_and_approx(self):
        arr = self._array()
        dist = arr.distribution("warm")
        assert dist[0] == (2_000, "exact")
        assert dist[1][1] == "approx"

    def test_distribution_omits_absent_blocks(self):
        arr = self._array()
        dist = arr.distribution("other")
        assert 2 in dist
        # blocks 0,1 should usually be absent (modulo bloom false positives)
        assert len(dist) <= 2

    def test_blocks_containing(self):
        arr = self._array()
        assert set(arr.blocks_containing("hot")) >= {0, 1}

    def test_block_weights(self):
        arr = self._array()
        w = arr.block_weights("hot")
        assert w[0] == 10_000 and w[1] == 8_000

    def test_global_delta_is_min_hashmap_value(self):
        arr = self._array()
        assert arr.global_delta() == 2_000

    def test_global_delta_fallback(self):
        arr = ElasticMapArray([_block_map(0, {}, ["a"])])
        assert arr.global_delta() == BlockElasticMap.DEFAULT_DELTA

    def test_estimate_total_size_eq6(self):
        arr = self._array()
        # hot: exact 10k + 8k = 18k; warm: exact 2k + delta(2k) for block 1
        assert arr.estimate_total_size("hot") >= 18_000
        warm = arr.estimate_total_size("warm")
        assert warm == pytest.approx(2_000 + 2_000, abs=2_000)  # + possible FP

    def test_estimate_exact_only_for_dominant_everywhere(self):
        arr = ElasticMapArray([_block_map(0, {"x": 500}, []), _block_map(1, {"x": 700}, [])])
        assert arr.estimate_total_size("x") == 1200

    def test_accuracy_perfect_when_all_exact(self):
        arr = ElasticMapArray([_block_map(0, {"x": 500, "y": 300}, [])])
        assert arr.accuracy(["x", "y"], 800) == pytest.approx(1.0)

    def test_accuracy_degrades_with_bloom_approximation(self):
        exact = ElasticMapArray([_block_map(0, {"x": 5000, "y": 10}, [])])
        lossy = ElasticMapArray([_block_map(0, {"x": 5000}, ["y"])])
        raw = 5010
        assert exact.accuracy(["x", "y"], raw) > lossy.accuracy(["x", "y"], raw) - 1e-9

    def test_accuracy_requires_positive_raw(self):
        with pytest.raises(MetadataError):
            self._array().accuracy(["hot"], 0)

    def test_memory_and_representation_ratio(self):
        arr = self._array()
        assert arr.memory_bytes() > 0
        ratio = arr.representation_ratio(10**6)
        assert ratio == pytest.approx(10**6 / arr.memory_bytes())

    def test_representation_ratio_empty_array_fails(self):
        arr = ElasticMapArray([])
        with pytest.raises(MetadataError):
            arr.representation_ratio(100)

    @given(st.integers(1, 50), st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_property_estimate_at_least_exact_part(self, n_exact, n_tail):
        """Eq. 6 estimate is never below the sum of exact entries."""
        dominant = {f"d{i}": 1000 + i for i in range(n_exact)}
        tail = [f"t{i}" for i in range(n_tail)]
        arr = ElasticMapArray([_block_map(0, dominant, tail)])
        for sid, size in dominant.items():
            assert arr.estimate_total_size(sid) >= size
