"""Tests for the discrete-event MapReduce engine and shuffle model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.errors import ConfigError, JobError
from repro.mapreduce import (
    ClusterCostModel,
    LocalityScheduler,
    MapReduceEngine,
    ShuffleModel,
)
from repro.mapreduce.apps import tokenize, top_k_search_job, word_count_job
from tests.conftest import make_records


@pytest.fixture
def env(small_cluster):
    recs = make_records({"hot": 200, "cold-a": 60, "cold-b": 60}, payload_len=40)
    dataset = small_cluster.write_dataset("d", recs)
    datanet = DataNet.build(dataset, alpha=0.5)
    engine = MapReduceEngine(small_cluster, ClusterCostModel(data_scale=64.0))
    return small_cluster, dataset, datanet, engine


class TestSelectionPhase:
    def test_filtered_records_complete(self, env):
        cluster, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(
            dataset, "hot", assignment, word_count_job().profile
        )
        got = sum(len(v) for v in sel.local_data.values())
        assert got == len(dataset.records_of("hot")) == 200

    def test_bytes_per_node_matches_records(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(dataset, "hot", assignment, word_count_job().profile)
        for node, records in sel.local_data.items():
            assert sel.bytes_per_node[node] == sum(r.nbytes for r in records)

    def test_all_blocks_read_when_not_skipping(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(dataset, "hot", assignment, word_count_job().profile)
        assert sel.blocks_read == dataset.num_blocks
        assert sel.bytes_read == dataset.total_bytes

    def test_skipping_reads_fewer_blocks(self, env):
        _c, dataset, datanet, engine = env
        full = engine.run_selection(
            dataset, "cold-a",
            datanet.schedule("cold-a", skip_absent=False),
            word_count_job().profile,
        )
        skipped = engine.run_selection(
            dataset, "cold-a",
            datanet.schedule("cold-a", skip_absent=True),
            word_count_job().profile,
        )
        assert skipped.blocks_read <= full.blocks_read
        # both must still find every record
        assert sum(len(v) for v in skipped.local_data.values()) == 60

    def test_positive_node_times(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(dataset, "hot", assignment, word_count_job().profile)
        busy = [t for n, t in sel.timing.node_times.items() if assignment.blocks_by_node[n]]
        assert all(t > 0 for t in busy)
        assert sel.makespan == max(sel.timing.node_times.values())

    def test_unknown_block_raises(self, env):
        from repro.core.scheduler import Assignment

        _c, dataset, _dn, engine = env
        bogus = Assignment({0: [9999]}, {0: 0})
        with pytest.raises(JobError):
            engine.run_selection(dataset, "hot", bogus, word_count_job().profile)


class TestAnalysisPhase:
    def test_output_matches_direct_execution(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        result = engine.run_job(dataset, "hot", word_count_job(), assignment)
        naive = {}
        for r in dataset.records_of("hot"):
            for w in tokenize(r.payload):
                naive[w] = naive.get(w, 0) + 1
        assert result.output == naive

    def test_output_independent_of_scheduling(self, env):
        _c, dataset, datanet, engine = env
        a1 = datanet.schedule("hot", skip_absent=False)
        a2 = LocalityScheduler().schedule(
            datanet.bipartite_graph("hot", skip_absent=False)
        )
        r1 = engine.run_job(dataset, "hot", word_count_job(), a1)
        r2 = engine.run_job(dataset, "hot", word_count_job(), a2)
        assert r1.output == r2.output

    def test_map_times_scale_with_data(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(dataset, "hot", assignment, word_count_job().profile)
        result = engine.run_analysis(word_count_job(), sel.local_data)
        # node with most data should have the longest map
        heaviest = max(sel.bytes_per_node, key=sel.bytes_per_node.get)
        assert result.map_times[heaviest] == max(result.map_times.values())

    def test_total_includes_job_overhead(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        sel = engine.run_selection(dataset, "hot", assignment, word_count_job().profile)
        result = engine.run_analysis(word_count_job(), sel.local_data)
        assert result.total_time >= engine.cost.job_overhead_s

    def test_chained_run_job_includes_selection(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        chained = engine.run_job(dataset, "hot", word_count_job(), assignment)
        sel = chained.selection
        assert sel is not None
        analysis_only = engine.run_analysis(word_count_job(), sel.local_data)
        assert chained.total_time >= analysis_only.total_time

    def test_empty_input_raises(self, env):
        _c, _d, _dn, engine = env
        with pytest.raises(JobError):
            engine.run_analysis(word_count_job(), {})

    def test_topk_through_engine(self, env):
        _c, dataset, datanet, engine = env
        assignment = datanet.schedule("hot", skip_absent=False)
        result = engine.run_job(
            dataset, "hot", top_k_search_job("x" * 10, k=5), assignment
        )
        assert len(result.output["topk"]) == 5

    def test_map_slots_shorten_node_time(self, small_cluster):
        recs = make_records({"hot": 200}, payload_len=40)
        dataset = small_cluster.write_dataset("d2", recs)
        datanet = DataNet.build(dataset, alpha=1.0)
        assignment = datanet.schedule("hot", skip_absent=False)
        cost = ClusterCostModel(data_scale=64.0)
        serial = MapReduceEngine(small_cluster, cost, map_slots=1)
        parallel = MapReduceEngine(small_cluster, cost, map_slots=2)
        prof = word_count_job().profile
        s1 = serial.run_selection(dataset, "hot", assignment, prof)
        s2 = parallel.run_selection(dataset, "hot", assignment, prof)
        assert s2.makespan <= s1.makespan

    def test_engine_validation(self, small_cluster):
        with pytest.raises(ConfigError):
            MapReduceEngine(small_cluster, map_slots=0)


class TestShuffleModel:
    def test_straggler_dominates_when_maps_imbalanced(self):
        model = ShuffleModel(ClusterCostModel())
        res = model.run({0: 10.0, 1: 50.0}, {0: 1000})
        assert res.durations[0] >= 40.0  # waits for the straggler
        assert res.start_time == 10.0

    def test_fetch_dominates_when_maps_balanced(self):
        cost = ClusterCostModel(network_bps=1e6)
        model = ShuffleModel(cost)
        res = model.run({0: 10.0, 1: 10.0}, {0: 5_000_000})
        assert res.durations[0] == pytest.approx(
            5.0 + 1.5e-8 * 5_000_000, rel=0.01
        )

    def test_min_max_mean(self):
        model = ShuffleModel(ClusterCostModel())
        res = model.run({0: 0.0, 1: 4.0}, {0: 0, 1: 10**9})
        assert res.min <= res.mean <= res.max

    def test_empty_map_times_raises(self):
        model = ShuffleModel(ClusterCostModel())
        with pytest.raises(ConfigError):
            model.run({}, {0: 100})

    def test_negative_partition_rejected(self):
        model = ShuffleModel(ClusterCostModel())
        with pytest.raises(ConfigError):
            model.run({0: 1.0}, {0: -5})

    def test_end_time_covers_all_reducers(self):
        model = ShuffleModel(ClusterCostModel())
        res = model.run({0: 5.0, 1: 9.0}, {0: 100, 1: 200})
        assert res.end_time >= max(res.start_time + d for d in res.durations.values())
