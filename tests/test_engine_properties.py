"""Property-based invariants of the execution stack.

These cross-check the layers against each other on randomized inputs:
conservation (no record gained or lost anywhere), scheduling-independence
of outputs, and monotonicity of simulated time in the cost knobs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DataNet, HDFSCluster, Record
from repro.core.bucketizer import BucketSpec
from repro.mapreduce import ClusterCostModel, LocalityScheduler, MapReduceEngine
from repro.mapreduce.apps import tokenize, word_count_job


def _random_environment(seed: int, num_subdatasets: int, records_per: int):
    rng = np.random.default_rng(seed)
    cluster = HDFSCluster(num_nodes=6, block_size=4096, rng=rng)
    records = []
    t = 0.0
    for i in range(num_subdatasets * records_per):
        sid = f"s{rng.integers(num_subdatasets)}"
        records.append(Record(sid, t, "w" * int(rng.integers(10, 60))))
        t += float(rng.random())
    dataset = cluster.write_dataset("d", records)
    datanet = DataNet.build(
        dataset, alpha=0.5, spec=BucketSpec.for_block_size(4096)
    )
    engine = MapReduceEngine(cluster, ClusterCostModel(data_scale=32.0))
    return cluster, dataset, datanet, engine, records


class TestConservation:
    @given(st.integers(0, 10**6), st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_property_selection_conserves_records(self, seed, num_sids):
        _c, dataset, datanet, engine, records = _random_environment(
            seed, num_sids, 40
        )
        target = "s0"
        assignment = datanet.schedule(target, skip_absent=False)
        sel = engine.run_selection(
            dataset, target, assignment, word_count_job().profile
        )
        got = sum(len(v) for v in sel.local_data.values())
        want = sum(1 for r in records if r.sub_id == target)
        assert got == want

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_property_wordcount_totals_match_tokens(self, seed):
        _c, dataset, datanet, engine, records = _random_environment(seed, 3, 40)
        target = "s0"
        assignment = datanet.schedule(target, skip_absent=False)
        result = engine.run_job(dataset, target, word_count_job(), assignment)
        token_total = sum(
            len(tokenize(r.payload)) for r in records if r.sub_id == target
        )
        assert sum(result.output.values()) == token_total

    @given(st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_property_output_scheduler_independent(self, seed):
        _c, dataset, datanet, engine, _r = _random_environment(seed, 3, 30)
        target = "s0"
        a1 = datanet.schedule(target, skip_absent=False)
        a2 = LocalityScheduler().schedule(
            datanet.bipartite_graph(target, skip_absent=False)
        )
        r1 = engine.run_job(dataset, target, word_count_job(), a1)
        r2 = engine.run_job(dataset, target, word_count_job(), a2)
        assert r1.output == r2.output


class TestTimeModelMonotonicity:
    def _makespan(self, cluster, dataset, datanet, *, scale):
        engine = MapReduceEngine(cluster, ClusterCostModel(data_scale=scale))
        assignment = datanet.schedule("s0", skip_absent=False)
        return engine.run_job(
            dataset, "s0", word_count_job(), assignment
        ).total_time

    def test_time_grows_with_data_scale(self):
        cluster, dataset, datanet, _e, _r = _random_environment(1, 3, 40)
        t_small = self._makespan(cluster, dataset, datanet, scale=16.0)
        t_big = self._makespan(cluster, dataset, datanet, scale=256.0)
        assert t_big > t_small

    def test_slower_disk_never_faster(self):
        cluster, dataset, datanet, _e, _r = _random_environment(2, 3, 40)
        assignment = datanet.schedule("s0", skip_absent=False)
        fast = MapReduceEngine(
            cluster, ClusterCostModel(disk_read_bps=200e6, data_scale=64.0)
        ).run_job(dataset, "s0", word_count_job(), assignment)
        slow = MapReduceEngine(
            cluster, ClusterCostModel(disk_read_bps=20e6, data_scale=64.0)
        ).run_job(dataset, "s0", word_count_job(), assignment)
        assert slow.total_time >= fast.total_time

    def test_balanced_assignment_never_slower_map_phase(self):
        """Across seeds: DataNet's analysis map makespan <= stock's."""
        for seed in range(5):
            _c, dataset, datanet, engine, _r = _random_environment(seed, 4, 40)
            target = "s0"
            prof = word_count_job().profile
            aware = datanet.schedule(target, skip_absent=False)
            stock = LocalityScheduler().schedule(
                datanet.bipartite_graph(target, skip_absent=False)
            )
            sel_aware = engine.run_selection(dataset, target, aware, prof)
            sel_stock = engine.run_selection(dataset, target, stock, prof)
            map_aware = engine.run_analysis(
                word_count_job(), sel_aware.local_data
            ).map_phase.makespan
            map_stock = engine.run_analysis(
                word_count_job(), sel_stock.local_data
            ).map_phase.makespan
            # allow one block's worth of slack: block granularity caps
            # what any scheduler can do at toy scale
            truth = dataset.subdataset_bytes_per_block(target)
            slack = max(truth.values(), default=0) * 32.0 * 3e-7 + 0.2
            assert map_aware <= map_stock + slack, f"seed {seed}"
