"""Tests for the experiment drivers (run on the fast small config).

These validate the *shape* claims each paper figure makes, at reduced
scale; the full-scale numbers live in the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import ReferenceConfig, build_movie_environment
from repro.experiments import ablations
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.migration import run_migration
from repro.experiments.pipeline import run_reference_pipeline
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

#: Shared across this module: one small environment, one pipeline run.
SMALL = ReferenceConfig.small()


class TestConfig:
    def test_small_is_fast_variant(self):
        assert SMALL.num_nodes < ReferenceConfig().num_nodes

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReferenceConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ReferenceConfig(alpha=2.0)

    def test_environment_cached(self):
        a = build_movie_environment(SMALL)
        b = build_movie_environment(SMALL)
        assert a is b

    def test_target_policy_int(self):
        cfg = ReferenceConfig.small(target_policy=0)
        env = build_movie_environment(cfg, use_cache=False)
        # rank 0 = the movie with the most stored records
        counts = {
            sid: len(env.dataset.records_of(sid))
            for sid in env.dataset.subdataset_ids()
        }
        assert counts[env.target] == max(counts.values())

    def test_target_policy_invalid(self):
        cfg = ReferenceConfig.small(target_policy="nonsense")
        with pytest.raises(ConfigError):
            build_movie_environment(cfg, use_cache=False)

    def test_environment_consistency(self):
        env = build_movie_environment(SMALL)
        assert env.dataset.num_blocks == env.datanet.num_blocks
        assert env.target in env.dataset.subdataset_ids()
        assert env.target_total_bytes > 0


class TestPipeline:
    def test_both_methods_run_all_apps(self):
        pipe = run_reference_pipeline(SMALL)
        for run in (pipe.without_datanet, pipe.with_datanet):
            assert set(run.jobs) == {
                "moving_average",
                "word_count",
                "histogram",
                "top_k_search",
            }

    def test_identical_outputs_across_methods(self):
        pipe = run_reference_pipeline(SMALL)
        for app in pipe.without_datanet.jobs:
            assert (
                pipe.without_datanet.jobs[app].output
                == pipe.with_datanet.jobs[app].output
            )

    def test_datanet_no_slower_on_compute_heavy_apps(self):
        pipe = run_reference_pipeline(SMALL)
        imp = pipe.improvements()
        assert imp["top_k_search"] > 0

    def test_improvement_ordering_light_vs_heavy(self):
        """Fig. 5a's qualitative claim: compute-heavy apps gain more."""
        pipe = run_reference_pipeline(SMALL)
        imp = pipe.improvements()
        assert imp["top_k_search"] >= imp["moving_average"] - 0.05

    def test_datanet_workload_more_balanced(self):
        pipe = run_reference_pipeline(SMALL)
        from repro.metrics import imbalance_ratio

        base = imbalance_ratio(pipe.without_datanet.selection.bytes_per_node.values())
        aware = imbalance_ratio(pipe.with_datanet.selection.bytes_per_node.values())
        assert aware <= base + 0.05


class TestFig1:
    def test_clustering_and_imbalance(self):
        r = run_fig1(SMALL)
        assert r.concentration_30 > 0.3  # densest 30 blocks hold a big share
        assert r.workload_imbalance > 1.0
        assert len(r.node_workloads) == SMALL.num_nodes
        assert "Figure 1" in r.format()


class TestFig2:
    def test_paper_numbers(self):
        r = run_fig2(mc_trials=50)
        assert r.expected_counts_m128["E[#nodes > 2E] (paper's 4.0)"] == pytest.approx(
            4.0, abs=0.1
        )
        assert r.expected_counts_m128[
            "E[#nodes < E/3] (paper's 3.9)"
        ] == pytest.approx(3.9, abs=0.1)

    def test_monte_carlo_close_to_analytic(self):
        r = run_fig2(mc_trials=150)
        for label, analytic in r.expected_counts_m128.items():
            assert r.monte_carlo_counts_m128[label] == pytest.approx(
                analytic, rel=0.5, abs=0.5
            )

    def test_format(self):
        assert "Figure 2" in run_fig2(mc_trials=10).format()


class TestTable1:
    def test_rows_sorted_by_count(self):
        r = run_table1(SMALL)
        counts = [c for _sid, c, _b in r.rows]
        assert counts == sorted(counts, reverse=True)
        assert r.num_movies > 1
        assert "Table I" in r.format()

    def test_bytes_sum_to_block(self):
        r = run_table1(SMALL)
        env = build_movie_environment(SMALL)
        block = env.dataset.block(r.block_id)
        assert sum(b for _s, _c, b in r.rows) == block.used_bytes


class TestFig5:
    def test_all_apps_reported(self):
        r = run_fig5(SMALL)
        assert set(r.overall) == {
            "moving_average",
            "word_count",
            "histogram",
            "top_k_search",
        }
        for app, row in r.overall.items():
            assert row["without"] > 0 and row["with"] > 0

    def test_block_series_covers_dataset(self):
        r = run_fig5(SMALL)
        env = build_movie_environment(SMALL)
        assert len(r.block_series) == env.dataset.num_blocks

    def test_format(self):
        assert "Figure 5a" in run_fig5(SMALL).format()


class TestFig6:
    def test_map_times_per_node(self):
        r = run_fig6(SMALL)
        assert len(r.topk_map_times_without) == SMALL.num_nodes

    def test_gap_widens_with_compute(self):
        """Fig. 6b/c: WordCount's min-max gap exceeds MovingAverage's."""
        r = run_fig6(SMALL)
        assert r.gap("word_count", "without") >= r.gap("moving_average", "without")

    def test_datanet_narrows_topk_gap(self):
        r = run_fig6(SMALL)
        assert r.gap("top_k_search", "with") <= r.gap("top_k_search", "without")

    def test_format(self):
        assert "Figure 6a" in run_fig6(SMALL).format()


class TestFig7:
    def test_shuffle_faster_with_datanet(self):
        r = run_fig7(SMALL)
        for app in ("word_count", "top_k_search"):
            assert r.stats[app]["with"]["avg"] <= r.stats[app]["without"]["avg"]

    def test_speedups_positive(self):
        r = run_fig7(SMALL)
        assert r.speedup_of("word_count") >= 1.0

    def test_format(self):
        assert "Figure 7" in run_fig7(SMALL).format()


class TestFig8:
    def test_github_experiment(self):
        r = run_fig8(SMALL, total_events=20_000)
        # at toy scale DataNet is within noise of stock; the reference-
        # scale comparison lives in the fig8 benchmark
        assert r.longest_map_with <= r.longest_map_without * 1.25
        assert r.block_imbalance > 1.0
        assert "Figure 8" in r.format()


class TestMigration:
    def test_migration_happens_and_datanet_wins(self):
        r = run_migration(SMALL)
        assert r.stats.migration_fraction > 0.0
        assert r.time_datanet <= r.time_dynamic
        assert "dynamic" in r.format()


class TestTable2:
    def test_tradeoff_direction(self):
        r = run_table2(SMALL, alphas=(0.5, 0.2))
        hi, lo = r.rows
        assert hi.realized_alpha >= lo.realized_alpha
        assert hi.accuracy >= lo.accuracy - 0.02
        assert hi.representation_ratio <= lo.representation_ratio
        assert "Table II" in r.format()

    def test_accuracy_below_one(self):
        r = run_table2(SMALL, alphas=(0.3,))
        assert 0.0 < r.rows[0].accuracy <= 1.0


class TestFig9:
    def test_large_subdatasets_more_accurate(self):
        r = run_fig9(SMALL)
        small_err = r.mean_abs_error_below(r.small_threshold)
        large_err = r.mean_abs_error_above(r.small_threshold)
        assert large_err <= small_err
        assert "Figure 9" in r.format()

    def test_points_sorted_by_size(self):
        r = run_fig9(SMALL)
        sizes = [p.actual_bytes for p in r.points]
        assert sizes == sorted(sizes)


class TestFig10:
    def test_balance_stabilizes(self):
        r = run_fig10(SMALL, alphas=(0.05, 0.15, 0.5, 1.0))
        assert r.stable_after(0.15, tol=0.25)
        assert "Figure 10" in r.format()

    def test_normalized_max_is_one_somewhere(self):
        r = run_fig10(SMALL, alphas=(0.05, 1.0))
        assert max(s.maximum for s in r.summaries.values()) == pytest.approx(1.0)


class TestAblations:
    def test_bucket_ablation_has_three_specs(self):
        t = ablations.run_bucket_ablation(SMALL)
        assert len(t.rows) == 3
        assert "fibonacci" in t.column("spec")

    def test_scheduler_ablation_ordering(self):
        t = ablations.run_scheduler_ablation(SMALL)
        by_name = {row[0]: float(row[1]) for row in t.rows}
        assert (
            by_name["fractional lower bound"]
            <= by_name["Ford-Fulkerson (optimal)"] + 0.1
        )

    def test_io_skip_reads_less(self):
        t = ablations.run_io_skip_ablation(SMALL)
        scan_all, skip = t.rows
        assert skip[1] <= scan_all[1]

    def test_bloom_eps_memory_monotone(self):
        t = ablations.run_bloom_eps_ablation(SMALL, error_rates=(0.001, 0.1))
        mem = [float(r[1]) for r in t.rows]
        assert mem[0] >= mem[1]

    def test_format_methods(self):
        assert "ablation" in ablations.run_bucket_ablation(SMALL).format().lower()

    def test_column_lookup_error(self):
        t = ablations.run_bucket_ablation(SMALL)
        with pytest.raises(ValueError):
            t.column("nope")
