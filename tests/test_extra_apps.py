"""Correctness tests for the extra applications (distinct words,
sessionization, inverted index)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hdfs import Record
from repro.mapreduce.apps import (
    distinct_words_job,
    inverted_index_job,
    sessionization_job,
    tokenize,
)
from tests.test_apps import _run_locally


class TestDistinctWords:
    def test_estimate_close_to_truth(self):
        recs = [
            Record("m", float(i), " ".join(f"word{j}" for j in range(i, i + 5)))
            for i in range(100)
        ]
        truth = len({w for r in recs for w in tokenize(r.payload)})
        out = _run_locally(distinct_words_job(), recs)
        assert out["distinct"] == pytest.approx(truth, rel=0.1, abs=5)

    def test_duplicates_collapse(self):
        recs = [Record("m", float(i), "same words every time") for i in range(50)]
        out = _run_locally(distinct_words_job(), recs)
        assert out["distinct"] == pytest.approx(4, abs=2)

    def test_precision_validated(self):
        with pytest.raises(ConfigError):
            distinct_words_job(precision=2)


class TestSessionization:
    def test_single_session(self):
        recs = [Record("u", float(i) * 0.1, "x") for i in range(10)]
        out = _run_locally(sessionization_job(gap_timeout=1.0), recs)
        count, mean_len, max_len = out["u"]
        assert count == 1 and max_len == 10

    def test_gap_splits_sessions(self):
        times = [0.0, 0.1, 0.2, 10.0, 10.1, 30.0]
        recs = [Record("u", t, "x") for t in times]
        out = _run_locally(sessionization_job(gap_timeout=1.0), recs)
        count, mean_len, max_len = out["u"]
        assert count == 3
        assert max_len == 3
        assert mean_len == pytest.approx(2.0)

    def test_per_subdataset_keys(self):
        recs = [Record("u1", 0.0, "x"), Record("u2", 5.0, "x")]
        out = _run_locally(sessionization_job(), recs)
        assert set(out) == {"u1", "u2"}

    def test_unsorted_input_handled(self):
        recs = [Record("u", t, "x") for t in (5.0, 0.0, 5.1, 0.2)]
        out = _run_locally(sessionization_job(gap_timeout=1.0), recs)
        assert out["u"][0] == 2  # two sessions regardless of arrival order

    def test_validation(self):
        with pytest.raises(ConfigError):
            sessionization_job(gap_timeout=0)


class TestInvertedIndex:
    def test_postings_point_at_records(self):
        recs = [
            Record("m", 1.0, "alpha beta"),
            Record("m", 2.0, "alpha gamma"),
        ]
        out = _run_locally(inverted_index_job(), recs)
        assert out["alpha"] == ["m@1.000", "m@2.000"]
        assert out["beta"] == ["m@1.000"]

    def test_word_emitted_once_per_record(self):
        recs = [Record("m", 1.0, "dup dup dup")]
        out = _run_locally(inverted_index_job(), recs)
        assert out["dup"] == ["m@1.000"]

    def test_postings_capped(self):
        recs = [Record("m", float(i), "hot") for i in range(100)]
        out = _run_locally(inverted_index_job(max_postings_per_word=10), recs)
        assert len(out["hot"]) == 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            inverted_index_job(max_postings_per_word=0)
