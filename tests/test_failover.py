"""End-to-end failover drills: a leader crash mid-ingest must be
invisible in the final bytes — metadata, results, and layout digests all
byte-identical to the crash-free run at the same seed."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.metrics import ServiceSummary
from repro.obs import Observability
from repro.rebalance import layout_digest
from repro.serve import DrillConfig, build_drill, run_service_drill


def _run(config):
    setup = build_drill(config)
    summary = setup.service.run(setup.requests, setup.appends)
    return summary, layout_digest(setup.service._view)


@pytest.fixture(scope="module")
def base_drill():
    return DrillConfig(num_nodes=8, jobs=8, append_batches=2)


@pytest.fixture(scope="module")
def healthy(base_drill):
    return _run(replace(base_drill, journal_replicas=3))


class TestLeaderCrashDrill:
    def test_failover_is_byte_invisible(self, base_drill, healthy):
        """The acceptance criterion: leader crash + fenced failover ends
        with digests byte-identical to the crash-free run."""
        healthy_summary, healthy_layout = healthy
        crashed, layout = _run(
            replace(base_drill, journal_replicas=3, leader_crash=True)
        )
        assert crashed.leadership_changes == 1
        assert crashed.failover_downtime > 0
        assert crashed.journal_replays == 1
        assert crashed.silent_drops == 0
        assert crashed.metadata_digest == healthy_summary.metadata_digest
        assert crashed.results_digest == healthy_summary.results_digest
        assert layout == healthy_layout

    def test_rerun_is_identical(self, base_drill):
        config = replace(base_drill, journal_replicas=3, leader_crash=True)
        assert _run(config) == _run(config)

    def test_no_job_is_lost_across_failover(self, base_drill):
        summary, _ = _run(
            replace(base_drill, journal_replicas=3, leader_crash=True)
        )
        # in-flight work is parked and replayed, never dropped
        assert summary.requeued_on_crash >= 1
        assert summary.completed + summary.cancelled_deadline + \
            summary.cancelled_timeout == summary.admitted
        assert summary.service_crashes == 0  # the process never died

    @pytest.mark.parametrize("replicas", [1, 3, 5])
    def test_any_replica_count_converges(self, base_drill, replicas):
        crashed, layout = _run(
            replace(
                base_drill, journal_replicas=replicas, leader_crash=True
            )
        )
        clean, clean_layout = _run(
            replace(base_drill, journal_replicas=replicas)
        )
        assert crashed.leadership_changes == 1
        assert crashed.metadata_digest == clean.metadata_digest
        assert crashed.results_digest == clean.results_digest
        assert layout == clean_layout

    def test_failover_spans_and_metrics_emitted(self, base_drill):
        obs = Observability.create()
        setup = build_drill(
            replace(base_drill, journal_replicas=3, leader_crash=True),
            obs=obs,
        )
        setup.service.run(setup.requests, setup.appends)
        names = [s.name for s in obs.tracer.spans]
        assert "service/leader-crash" in names
        assert "service/failover" in names
        failover = next(
            s for s in obs.tracer.spans if s.name == "service/failover"
        )
        assert failover.attrs["term"] >= 1
        assert failover.attrs["leader"].startswith("journal-")
        from repro.obs.export import snapshot_text

        text = snapshot_text(tracer=obs.tracer, metrics=obs.metrics)
        assert "service_leadership_changes_total" in text
        assert "service_failover_latency_seconds" in text


class TestJournalReplicaFaultDrills:
    def test_replica_crash_is_byte_invisible(self, base_drill, healthy):
        healthy_summary, healthy_layout = healthy
        summary, layout = _run(
            replace(base_drill, journal_replicas=3, journal_crash=True)
        )
        assert summary.journal_replica_lag > 0  # the lag was real
        assert summary.leadership_changes == 0  # the leader never died
        assert summary.metadata_digest == healthy_summary.metadata_digest
        assert summary.results_digest == healthy_summary.results_digest
        assert layout == healthy_layout

    def test_minority_partition_is_byte_invisible(self, base_drill, healthy):
        healthy_summary, _ = healthy
        summary, _ = _run(
            replace(base_drill, journal_replicas=3, meta_partition=True)
        )
        assert summary.journal_replica_lag > 0
        assert summary.metadata_digest == healthy_summary.metadata_digest
        assert summary.results_digest == healthy_summary.results_digest

    def test_all_metadata_faults_together(self, base_drill, healthy):
        healthy_summary, healthy_layout = healthy
        summary, layout = _run(
            replace(
                base_drill,
                journal_replicas=5,
                leader_crash=True,
                journal_crash=True,
                meta_partition=True,
            )
        )
        assert summary.leadership_changes == 1
        assert summary.silent_drops == 0
        clean, clean_layout = _run(replace(base_drill, journal_replicas=5))
        assert summary.metadata_digest == clean.metadata_digest
        assert summary.results_digest == clean.results_digest
        assert layout == clean_layout


class TestDrillConfigValidation:
    def test_journal_crash_needs_two_replicas(self):
        with pytest.raises(ConfigError):
            DrillConfig(journal_crash=True)

    def test_meta_partition_needs_three_replicas(self):
        with pytest.raises(ConfigError):
            DrillConfig(journal_replicas=2, meta_partition=True)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigError):
            DrillConfig(journal_replicas=0)

    def test_retry_knobs_validated_at_parse_time(self):
        with pytest.raises(ConfigError):
            DrillConfig(retry_jitter="gaussian")
        with pytest.raises(ConfigError):
            DrillConfig(retry_max_elapsed=-1.0)


class TestFailoverSummaryInvariants:
    def test_downtime_without_leadership_change_refused(self):
        with pytest.raises(ConfigError):
            ServiceSummary(
                tenants=1,
                submitted=1,
                admitted=1,
                completed=1,
                failover_downtime=2.0,
            )

    def test_lag_bounded_by_committed_records(self):
        with pytest.raises(ConfigError):
            ServiceSummary(
                tenants=1,
                submitted=1,
                admitted=1,
                completed=1,
                journal_records=3,
                journal_replica_lag=4,
            )

    def test_valid_failover_summary_formats(self):
        summary = ServiceSummary(
            tenants=1,
            submitted=1,
            admitted=1,
            completed=1,
            journal_records=5,
            leadership_changes=1,
            failover_downtime=0.97,
            journal_replica_lag=2,
        )
        text = summary.format()
        assert "leadership changes" in text
        assert "failover downtime (s)" in text
        assert "peak journal replica lag" in text
