"""Failure-injection tests: node loss, re-replication, scheduling under churn."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DataNet, HDFSCluster
from repro.core.bipartite import BipartiteGraph
from repro.core.scheduler import DistributionAwareScheduler
from repro.errors import ConfigError, ReplicationError
from repro.hdfs import FailureManager
from tests.conftest import make_records


def _cluster_with_data(num_nodes=8, replication=3, seed=1):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=replication,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 120, "cold": 40}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    return cluster, dataset


class TestFailNode:
    def test_replication_restored(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        affected = {bid for _ds, bid in cluster.namenode.blocks_on_node(0)}
        events = fm.fail_node(0)
        counts = fm.verify_replication("d")
        assert all(c == 3 for c in counts.values())
        # only blocks that actually lived on node 0 were copied
        assert {e.block_id for e in events} <= affected

    def test_no_re_replication_option(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        events = fm.fail_node(0, re_replicate=False)
        assert events == []
        counts = fm.verify_replication("d")
        assert any(c == 2 for c in counts.values()) or all(c == 3 for c in counts.values())

    def test_destination_is_live_and_new(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        events = fm.fail_node(3)
        for e in events:
            assert fm.is_alive(e.destination)
            assert e.destination != 3

    def test_double_failure_rejected(self):
        cluster, _ = _cluster_with_data()
        fm = FailureManager(cluster)
        fm.fail_node(0)
        with pytest.raises(ConfigError):
            fm.fail_node(0)

    def test_unknown_node_rejected(self):
        cluster, _ = _cluster_with_data()
        with pytest.raises(ConfigError):
            FailureManager(cluster).fail_node(99)

    def test_sequential_failures_keep_invariant(self):
        cluster, dataset = _cluster_with_data(num_nodes=10)
        fm = FailureManager(cluster)
        for node in (0, 1, 2):
            fm.fail_node(node)
            counts = fm.verify_replication("d")
            assert all(c >= 3 for c in counts.values())

    def test_bytes_re_replicated_accounted(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        events = fm.fail_node(0)
        assert fm.bytes_re_replicated() == sum(e.nbytes for e in events)

    def test_small_cluster_degrades_gracefully(self):
        """When fewer live nodes than the replication factor remain, the
        replica set shrinks instead of erroring."""
        cluster, dataset = _cluster_with_data(num_nodes=3, replication=3)
        fm = FailureManager(cluster)
        fm.fail_node(0)
        counts = fm.verify_replication("d")
        assert all(c == 2 for c in counts.values())

    def test_losing_all_replicas_raises(self):
        cluster, dataset = _cluster_with_data(num_nodes=3, replication=1)
        fm = FailureManager(cluster)
        # replication=1: each block has exactly one home; killing it
        # without survivors must raise for any block it owned.
        owned = cluster.namenode.blocks_on_node(0)
        if owned:
            with pytest.raises(ReplicationError):
                fm.fail_node(0)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_invariant_after_one_failure(self, seed):
        cluster, dataset = _cluster_with_data(num_nodes=8, seed=seed)
        fm = FailureManager(cluster)
        victim = int(np.random.default_rng(seed).integers(8))
        fm.fail_node(victim)
        counts = fm.verify_replication("d")
        assert all(c >= 3 for c in counts.values())


class TestSourceSelection:
    def test_copy_source_is_least_loaded_survivor(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        survivors = [n for n in cluster.nodes if n != 0]
        expected = min(
            survivors, key=lambda n: (cluster.datanodes[n].used_bytes(), n)
        )
        # before any copies land, the first event must name the globally
        # least-loaded survivor whenever it holds the block
        events = fm.fail_node(0)
        assert events
        first = events[0]
        holders = cluster.namenode.block_locations("d", first.block_id)
        if expected in holders:
            assert first.source == expected

    def test_sources_are_live_replica_holders(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        events = fm.fail_node(2)
        for e in events:
            assert fm.is_alive(e.source)
            assert e.source != e.destination
            assert e.source in cluster.namenode.block_locations("d", e.block_id)

    def test_sources_spread_under_churn(self):
        """The least-loaded rule must not funnel every copy through one
        survivor once loads diverge."""
        cluster, dataset = _cluster_with_data(num_nodes=10)
        fm = FailureManager(cluster)
        sources = set()
        for node in (0, 1, 2):
            sources.update(e.source for e in fm.fail_node(node))
        assert len(sources) > 1


class TestFailureSequencesProperty:
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=3, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_graph_never_references_dead_node(self, victims):
        """After any fail_node sequence, the rebuilt bipartite graph only
        points at live nodes and replication is verifiably restored."""
        cluster, dataset = _cluster_with_data(num_nodes=8)
        datanet = DataNet.build(dataset, alpha=0.5)
        fm = FailureManager(cluster)
        for node in victims:
            fm.fail_node(node)
        counts = fm.verify_replication("d")
        assert all(c >= min(3, len(fm.live_nodes)) for c in counts.values())
        datanet.refresh_placement(dataset.placement())
        graph = datanet.bipartite_graph("hot", exclude=fm.dead_nodes)
        assert not set(graph.nodes) & set(fm.dead_nodes)
        for bid in graph.blocks:
            holders = graph._nodes_of[bid]
            assert holders and not holders & set(fm.dead_nodes)
        assignment = DistributionAwareScheduler().schedule(graph)
        for node in assignment.blocks_by_node:
            assert fm.is_alive(node)


class TestSchedulingAfterFailure:
    def test_schedule_excludes_dead_node(self):
        cluster, dataset = _cluster_with_data()
        fm = FailureManager(cluster)
        fm.fail_node(0)
        datanet = DataNet.build(dataset, alpha=0.5)
        weights = datanet.elasticmap.block_weights("hot")
        placement = {
            bid: [n for n in nodes if fm.is_alive(n)]
            for bid, nodes in dataset.placement().items()
        }
        graph = BipartiteGraph(placement, {b: weights.get(b, 0) for b in placement},
                               nodes=fm.live_nodes)
        assignment = DistributionAwareScheduler().schedule(graph)
        assert 0 not in assignment.blocks_by_node
        assigned = sorted(b for bs in assignment.blocks_by_node.values() for b in bs)
        assert assigned == sorted(placement)
