"""Unit tests for the fault-injection subsystem: plans, the deterministic
injector oracle, the attempt lifecycle, blacklisting, degraded scheduling,
and the fault-aware discrete-event simulator path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ConfigError,
    FaultError,
    ReproError,
    SchedulingError,
    TaskAttemptError,
)
from repro.faults import (
    AttemptLog,
    FaultInjector,
    FaultPlan,
    MetaOutage,
    NodeBlacklist,
    NodeCrash,
    RetryPolicy,
    SlowNode,
    TransientFaults,
    run_attempts,
)
from repro.sim.simulator import DiscreteEventSimulator
from repro.sim.tasks import SimTask


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.crashed_nodes == ()

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(NodeCrash(1), NodeCrash(1, time=2.0)))

    def test_duplicate_slow_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(slow_nodes=(SlowNode(1, 2.0), SlowNode(1, 3.0)))

    def test_duplicate_outage_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(meta_outages=(MetaOutage("m0"), MetaOutage("m0")))

    def test_validation_of_components(self):
        with pytest.raises(ConfigError):
            NodeCrash(1, time=-1.0)
        with pytest.raises(ConfigError):
            SlowNode(1, factor=0.5)
        with pytest.raises(ConfigError):
            TransientFaults(probability=1.0)
        with pytest.raises(ConfigError):
            TransientFaults(probability=0.1, waste_fraction=2.0)
        with pytest.raises(ConfigError):
            MetaOutage("")

    def test_random_is_deterministic(self):
        nodes = list(range(8))
        a = FaultPlan.random(7, nodes, crash_count=2, slow_count=1)
        b = FaultPlan.random(7, nodes, crash_count=2, slow_count=1)
        assert a == b
        assert len(a.crashes) == 2 and len(a.slow_nodes) == 1
        assert not set(a.crashed_nodes) & {s.node for s in a.slow_nodes}

    def test_random_rejects_oversubscription(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(0, [1, 2], crash_count=2, slow_count=1)


class TestFaultInjector:
    def test_no_transient_never_fails(self):
        inj = FaultInjector(FaultPlan())
        assert not any(
            inj.attempt_fails(f"t{i}", 1, 0) for i in range(50)
        )

    def test_transient_rate_roughly_matches(self):
        inj = FaultInjector(FaultPlan(transient=TransientFaults(0.3)))
        fails = sum(inj.attempt_fails(f"t{i}", 1, i % 4) for i in range(2000))
        assert 0.25 < fails / 2000 < 0.35

    def test_decisions_are_deterministic_and_keyed(self):
        plan = FaultPlan(seed=5, transient=TransientFaults(0.5))
        a, b = FaultInjector(plan), FaultInjector(plan)
        draws_a = [a.attempt_fails("t", k, 0) for k in range(1, 20)]
        draws_b = [b.attempt_fails("t", k, 0) for k in range(1, 20)]
        assert draws_a == draws_b
        # a different seed flips at least one decision
        other = FaultInjector(FaultPlan(seed=6, transient=TransientFaults(0.5)))
        assert draws_a != [other.attempt_fails("t", k, 0) for k in range(1, 20)]

    def test_crash_queries(self):
        inj = FaultInjector(
            FaultPlan(crashes=(NodeCrash(2, 1.5), NodeCrash(0, 0.5)))
        )
        assert inj.crash_time(2) == 1.5
        assert inj.crash_time(7) is None
        assert inj.is_crashed(2, 2.0) and not inj.is_crashed(2, 1.0)
        assert [c.node for c in inj.crashes_chronological()] == [0, 2]

    def test_slowdown_applies_after_start(self):
        inj = FaultInjector(
            FaultPlan(slow_nodes=(SlowNode(1, factor=3.0, start=5.0),))
        )
        assert inj.slowdown(1, 1.0) == 1.0
        assert inj.slowdown(1, 6.0) == 3.0
        assert inj.slowdown(0, 6.0) == 1.0


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0)
        assert [p.backoff(n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(blacklist_after=0)
        with pytest.raises(ConfigError):
            RetryPolicy().backoff(0)


class TestAttemptLog:
    def test_histogram_counts_only_completed(self):
        log = AttemptLog()
        log.record("a", 0, 1, "fault", 0.2)
        log.record("a", 0, 2, "ok")
        log.record("b", 1, 1, "ok")
        log.record("c", 2, 1, "fault", 0.1)  # never completed
        assert log.histogram() == {1: 1, 2: 1}
        assert log.attempts_of("a") == 2
        assert log.wasted_seconds == pytest.approx(0.3)
        assert log.num_failures == 2

    def test_rejects_unknown_outcome(self):
        with pytest.raises(ConfigError):
            AttemptLog().record("a", 0, 1, "meh")


class TestNodeBlacklist:
    def test_benches_at_threshold(self):
        bl = NodeBlacklist(2)
        assert not bl.record_failure(3)
        assert not bl.is_blacklisted(3)
        assert bl.record_failure(3)  # newly benched exactly once
        assert bl.is_blacklisted(3)
        assert not bl.record_failure(3)
        assert bl.nodes == [3]
        assert bl.failures_on(3) == 3


class TestRunAttempts:
    def _flaky(self, p):
        return FaultInjector(FaultPlan(seed=1, transient=TransientFaults(p)))

    def test_clean_run_is_one_attempt(self):
        log = AttemptLog()
        elapsed, used = run_attempts(
            2.0, 0, "t", FaultInjector(FaultPlan()), RetryPolicy(), log,
            NodeBlacklist(3),
        )
        assert (elapsed, used) == (2.0, 1)
        assert log.histogram() == {1: 1}

    def test_retries_charge_waste_and_backoff(self):
        inj = self._flaky(0.9)
        policy = RetryPolicy(max_attempts=50, backoff_base_s=0.25)
        log = AttemptLog()
        elapsed, used = run_attempts(
            1.0, 0, "t", inj, policy, log, NodeBlacklist(1000)
        )
        assert used > 1
        wasted = (used - 1) * inj.waste_fraction
        backoffs = sum(policy.backoff(n) for n in range(1, used))
        assert elapsed == pytest.approx(1.0 + wasted + backoffs)

    def test_exhaustion_raises_with_context(self):
        inj = FaultInjector(
            FaultPlan(transient=TransientFaults(0.999999))
        )
        with pytest.raises(TaskAttemptError) as exc:
            run_attempts(
                1.0, 4, "t", inj, RetryPolicy(max_attempts=3),
                AttemptLog(), NodeBlacklist(1000),
            )
        assert exc.value.task_id == "t"
        assert exc.value.node == 4
        assert exc.value.attempts == 3
        assert isinstance(exc.value, ReproError)


def _chain(n=9, nodes=3):
    tasks = [
        SimTask(task_id=f"t{i}", node=i % nodes, duration=1.0 + 0.1 * i)
        for i in range(n)
    ]
    tasks.append(
        SimTask(
            task_id="agg", node=0, duration=0.5,
            deps=frozenset(f"t{i}" for i in range(n)),
        )
    )
    return tasks


class TestSimulatorFaultPath:
    def test_none_injector_matches_plain_run(self):
        sim = DiscreteEventSimulator()
        a = sim.run(_chain())
        b = sim.run(_chain(), injector=None)
        assert a.timeline.intervals == b.timeline.intervals
        assert a.attempts_histogram == {} and a.dead_nodes == []

    def test_empty_plan_reproduces_fault_free_timeline(self):
        sim = DiscreteEventSimulator()
        plain = sim.run(_chain())
        injected = sim.run(_chain(), injector=FaultInjector(FaultPlan()))
        assert injected.timeline.intervals == plain.timeline.intervals
        assert injected.attempts_histogram == {1: 10}
        assert injected.wasted_seconds == 0.0

    def test_deterministic_under_faults(self):
        plan = FaultPlan(
            seed=7,
            crashes=(NodeCrash(1, time=1.5),),
            slow_nodes=(SlowNode(2, factor=1.5),),
            transient=TransientFaults(0.2),
        )
        sim = DiscreteEventSimulator()
        a = sim.run(_chain(), injector=FaultInjector(plan))
        b = sim.run(_chain(), injector=FaultInjector(plan))
        assert a.timeline.intervals == b.timeline.intervals
        assert a.attempts_histogram == b.attempts_histogram
        assert a.migrated_tasks == b.migrated_tasks

    def test_crash_migrates_work_off_dead_node(self):
        plan = FaultPlan(crashes=(NodeCrash(1, time=1.5),))
        sim = DiscreteEventSimulator()
        res = sim.run(_chain(), injector=FaultInjector(plan))
        assert res.dead_nodes == [1]
        assert sorted(res.timeline.intervals) == sorted(
            t.task_id for t in _chain()
        )
        for task in res.timeline.tasks.values():
            # every task's realized node is live
            assert task.node != 1 or res.timeline.intervals[task.task_id][1] <= 1.5

    def test_heartbeat_delays_crash_requeue(self):
        policy = RetryPolicy(heartbeat_timeout_s=3.0)
        plan = FaultPlan(crashes=(NodeCrash(0, time=0.5),))
        tasks = [
            SimTask(task_id="victim", node=0, duration=2.0),
            SimTask(task_id="filler", node=1, duration=0.1),
        ]
        res = DiscreteEventSimulator().run(
            tasks, injector=FaultInjector(plan), policy=policy
        )
        start, _end = res.timeline.intervals["victim"]
        # detected one heartbeat after the 0.5 s crash, then re-run on node 1
        assert start == pytest.approx(3.5)
        assert res.timeline.tasks["victim"].node == 1

    def test_slow_node_stretches_duration(self):
        plan = FaultPlan(slow_nodes=(SlowNode(0, factor=4.0),))
        tasks = [SimTask(task_id="only", node=0, duration=1.0)]
        res = DiscreteEventSimulator().run(tasks, injector=FaultInjector(plan))
        assert res.makespan == pytest.approx(4.0)

    def test_all_nodes_dead_raises(self):
        plan = FaultPlan(crashes=(NodeCrash(0, time=0.1),))
        tasks = [SimTask(task_id="only", node=0, duration=2.0)]
        with pytest.raises(FaultError):
            DiscreteEventSimulator().run(tasks, injector=FaultInjector(plan))

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(transient=TransientFaults(0.999999))
        with pytest.raises(TaskAttemptError):
            DiscreteEventSimulator().run(
                _chain(), injector=FaultInjector(plan),
                policy=RetryPolicy(max_attempts=2, blacklist_after=1000),
            )

    def test_everything_blacklisted_raises_fault_error(self):
        plan = FaultPlan(transient=TransientFaults(0.999999))
        with pytest.raises(FaultError):
            DiscreteEventSimulator().run(
                _chain(), injector=FaultInjector(plan),
                policy=RetryPolicy(max_attempts=50, blacklist_after=1),
            )

    def test_blacklisted_node_stops_receiving_work(self):
        # node 0 fails every attempt; after the threshold it is benched and
        # its tasks complete elsewhere
        class AlwaysFailOnZero(FaultInjector):
            def attempt_fails(self, task_key, attempt, node):
                return node == 0

        inj = AlwaysFailOnZero(FaultPlan(transient=TransientFaults(0.5)))
        policy = RetryPolicy(max_attempts=10, blacklist_after=2)
        res = DiscreteEventSimulator().run(
            _chain(), injector=inj, policy=policy
        )
        assert res.blacklisted_nodes == [0]
        for task in res.timeline.tasks.values():
            assert task.node != 0

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_all_tasks_complete_once(self, seed):
        plan = FaultPlan.random(
            seed, [0, 1, 2], crash_count=1, crash_horizon_s=4.0,
            flaky_probability=0.15,
        )
        res = DiscreteEventSimulator().run(
            _chain(), injector=FaultInjector(plan),
            policy=RetryPolicy(max_attempts=25),
        )
        assert sorted(res.timeline.intervals) == sorted(
            t.task_id for t in _chain()
        )
        for node in res.dead_nodes:
            crash_at = FaultInjector(plan).crash_time(node)
            for tid, task in res.timeline.tasks.items():
                if task.node == node:
                    assert res.timeline.intervals[tid][1] <= crash_at


class TestIntegrityFaultPlan:
    def test_duplicate_bitrot_rejected(self):
        from repro.faults import BitRot

        with pytest.raises(ConfigError):
            FaultPlan(bit_rots=(BitRot(1, 0), BitRot(1, 0, time=2.0)))

    def test_duplicate_stale_rejected(self):
        from repro.faults import StaleMetadata

        with pytest.raises(ConfigError):
            FaultPlan(stale_metadata=(StaleMetadata(3), StaleMetadata(3)))

    def test_duplicate_restart_wave_rejected(self):
        from repro.faults import DriverRestart

        with pytest.raises(ConfigError):
            FaultPlan(driver_restarts=(DriverRestart(1), DriverRestart(1)))

    def test_integrity_faults_make_plan_non_empty(self):
        from repro.faults import BitRot, DriverRestart, StaleMetadata

        assert not FaultPlan(bit_rots=(BitRot(0, 0),)).is_empty()
        assert not FaultPlan(stale_metadata=(StaleMetadata(0),)).is_empty()
        assert not FaultPlan(driver_restarts=(DriverRestart(0),)).is_empty()

    def test_random_bitrot_requires_num_blocks(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(1, [0, 1, 2], bitrot_count=2)

    def test_random_bitrot_deterministic_and_in_range(self):
        a = FaultPlan.random(5, [0, 1, 2, 3], bitrot_count=3, num_blocks=6)
        b = FaultPlan.random(5, [0, 1, 2, 3], bitrot_count=3, num_blocks=6)
        assert a.bit_rots == b.bit_rots
        assert len(a.bit_rots) == 3
        for rot in a.bit_rots:
            assert rot.node in (0, 1, 2, 3)
            assert 0 <= rot.block < 6


class TestTransientIndependence:
    """The transient-failure oracle is a pure hash of (seed, task, attempt,
    node): stateless, order-free, and independent across coordinates."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        task=st.text(min_size=1, max_size=12),
        attempt=st.integers(1, 6),
        node=st.integers(0, 63),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_is_pure_and_coordinate_independent(
        self, seed, task, attempt, node
    ):
        plan = FaultPlan(seed=seed, transient=TransientFaults(0.5))
        verdict = FaultInjector(plan).attempt_fails(task, attempt, node)

        # stateless: a fresh injector that first consulted *perturbed*
        # tuples (each differing in exactly one coordinate) still returns
        # the same verdict for the original tuple
        other = FaultInjector(plan)
        other.attempt_fails(task + "x", attempt, node)
        other.attempt_fails(task, attempt + 1, node)
        other.attempt_fails(task, attempt, node + 1)
        assert other.attempt_fails(task, attempt, node) == verdict

        # unrelated plan content does not shift the draw
        dressed = FaultPlan(
            seed=seed,
            transient=TransientFaults(0.5),
            crashes=(NodeCrash(node + 1, time=1.0),),
            slow_nodes=(SlowNode(node + 2, 2.0),),
        )
        assert FaultInjector(dressed).attempt_fails(task, attempt, node) == verdict

    def test_coin_varies_across_each_coordinate(self):
        injector = FaultInjector(FaultPlan(seed=3, transient=TransientFaults(0.5)))
        tasks = {injector.attempt_fails(f"t{i}", 1, 0) for i in range(40)}
        attempts = {injector.attempt_fails("t", a, 0) for a in range(1, 41)}
        nodes = {injector.attempt_fails("t", 1, n) for n in range(40)}
        seeds = {
            FaultInjector(
                FaultPlan(seed=s, transient=TransientFaults(0.5))
            ).attempt_fails("t", 1, 0)
            for s in range(40)
        }
        assert tasks == attempts == nodes == seeds == {True, False}
