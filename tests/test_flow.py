"""Tests for the Ford-Fulkerson max-flow solver and optimal assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bipartite import BipartiteGraph
from repro.core.flow import MaxFlowSolver, fractional_optimum, optimal_assignment
from repro.core.scheduler import DistributionAwareScheduler
from repro.errors import ConfigError, SchedulingError


class TestMaxFlowSolver:
    def test_single_edge(self):
        solver = MaxFlowSolver({"s": {"t": 5.0}})
        assert solver.max_flow("s", "t") == 5.0
        assert solver.flow_on("s", "t") == 5.0

    def test_series_bottleneck(self):
        solver = MaxFlowSolver({"s": {"a": 10}, "a": {"t": 3}})
        assert solver.max_flow("s", "t") == 3

    def test_parallel_paths(self):
        solver = MaxFlowSolver({"s": {"a": 4, "b": 6}, "a": {"t": 4}, "b": {"t": 6}})
        assert solver.max_flow("s", "t") == 10

    def test_classic_clrs_network(self):
        # CLRS figure 26.6-style network with a known max flow of 23
        caps = {
            "s": {"v1": 16, "v2": 13},
            "v1": {"v3": 12},
            "v2": {"v1": 4, "v4": 14},
            "v3": {"v2": 9, "t": 20},
            "v4": {"v3": 7, "t": 4},
        }
        assert MaxFlowSolver(caps).max_flow("s", "t") == 23

    def test_cross_check_against_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(11)
        nodes = list(range(8))
        caps: dict = {}
        G = nx.DiGraph()
        for _ in range(24):
            u, v = rng.choice(nodes, size=2, replace=False)
            c = float(rng.integers(1, 20))
            caps.setdefault(int(u), {})[int(v)] = caps.get(int(u), {}).get(int(v), 0) + c
            if G.has_edge(int(u), int(v)):
                G[int(u)][int(v)]["capacity"] += c
            else:
                G.add_edge(int(u), int(v), capacity=c)
        ours = MaxFlowSolver(caps).max_flow(0, 7)
        theirs = nx.maximum_flow_value(G, 0, 7) if G.has_node(0) and G.has_node(7) else 0.0
        assert ours == pytest.approx(theirs)

    def test_disconnected_sink(self):
        solver = MaxFlowSolver({"s": {"a": 5}})
        assert solver.max_flow("s", "t") == 0.0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigError):
            MaxFlowSolver({"s": {"t": -1}})

    def test_rejects_same_source_sink(self):
        with pytest.raises(ConfigError):
            MaxFlowSolver({"s": {"t": 1}}).max_flow("s", "s")

    def test_flow_conservation(self):
        caps = {
            "s": {"a": 8, "b": 5},
            "a": {"b": 3, "t": 4},
            "b": {"t": 9},
        }
        solver = MaxFlowSolver(caps)
        total = solver.max_flow("s", "t")
        for mid in ("a", "b"):
            inflow = sum(solver.flow_on(u, mid) for u in ("s", "a", "b"))
            outflow = sum(solver.flow_on(mid, v) for v in ("a", "b", "t"))
            assert inflow == pytest.approx(outflow)
        assert total == pytest.approx(
            solver.flow_on("s", "a") + solver.flow_on("s", "b")
        )


def _clustered_graph(seed: int, num_nodes=8, num_blocks=48) -> BipartiteGraph:
    rng = np.random.default_rng(seed)
    placement = {
        b: list(rng.choice(num_nodes, size=min(3, num_nodes), replace=False))
        for b in range(num_blocks)
    }
    weights = {b: int(w) for b, w in enumerate(rng.gamma(1.2, 7.0, num_blocks) * 50)}
    return BipartiteGraph(placement, weights, nodes=list(range(num_nodes)))


class TestFractionalOptimum:
    def test_bounded_by_mean_and_total(self):
        g = _clustered_graph(0)
        opt = fractional_optimum(g)
        assert g.total_weight() / g.num_nodes - 1 <= opt <= g.total_weight()

    def test_perfectly_splittable_reaches_mean(self):
        # every block on every node -> fractional optimum == mean
        placement = {b: [0, 1, 2, 3] for b in range(8)}
        weights = {b: 100 for b in range(8)}
        g = BipartiteGraph(placement, weights)
        assert fractional_optimum(g, tol=0.01) == pytest.approx(200, abs=1)

    def test_forced_concentration(self):
        # all blocks only on node 0 -> optimum is the full total
        placement = {b: [0] for b in range(4)}
        weights = {b: 25 for b in range(4)}
        g = BipartiteGraph(placement, weights, nodes=[0, 1])
        assert fractional_optimum(g, tol=0.01) == pytest.approx(100, abs=1)

    def test_zero_weight_graph(self):
        g = BipartiteGraph({0: [0]}, {0: 0}, nodes=[0, 1])
        assert fractional_optimum(g) == 0.0

    def test_empty_nodes_raises(self):
        g = BipartiteGraph({}, {}, nodes=[])
        with pytest.raises(SchedulingError):
            fractional_optimum(g)


class TestOptimalAssignment:
    def test_all_blocks_assigned_locally(self):
        g = _clustered_graph(1)
        a = optimal_assignment(g)
        assigned = sorted(b for bs in a.blocks_by_node.values() for b in bs)
        assert assigned == g.blocks
        for node, blocks in a.blocks_by_node.items():
            for b in blocks:
                assert g.is_local(node, b)  # flow assignment is replica-local

    def test_close_to_fractional_bound(self):
        g = _clustered_graph(2)
        a = optimal_assignment(g)
        bound = fractional_optimum(g)
        max_w = max(g.weight(b) for b in g.blocks)
        # rounding can exceed the bound by at most ~one block's weight
        assert a.max_workload <= bound + max_w + 1

    def test_at_least_as_good_as_greedy_when_greedy_local(self):
        g = _clustered_graph(3)
        greedy = DistributionAwareScheduler().schedule(g)
        opt = optimal_assignment(g)
        assert opt.max_workload <= greedy.max_workload + max(
            g.weight(b) for b in g.blocks
        )

    def test_zero_weight_blocks_spread(self):
        placement = {b: [0, 1] for b in range(10)}
        g = BipartiteGraph(placement, {b: 0 for b in range(10)})
        a = optimal_assignment(g)
        assert a.num_tasks == 10
        counts = [len(v) for v in a.blocks_by_node.values()]
        assert max(counts) - min(counts) <= 1

    def test_workload_sums_preserved(self):
        g = _clustered_graph(4)
        a = optimal_assignment(g)
        assert sum(a.workload_by_node.values()) == g.total_weight()

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_complete_local_assignment(self, seed):
        g = _clustered_graph(seed, num_nodes=5, num_blocks=20)
        a = optimal_assignment(g)
        assigned = sorted(b for bs in a.blocks_by_node.values() for b in bs)
        assert assigned == g.blocks
        for node, blocks in a.blocks_by_node.items():
            assert all(g.is_local(node, b) for b in blocks)
