"""Gray-failure resilience tests: windowed fault plans, the φ-accrual
health detector, hedged replica reads, partition-aware scheduling, and
the end-to-end acceptance scenario (30% slow nodes + a rack partition
healing mid-job → byte-identical output, bounded makespan, exported
suspicion/hedge/partition telemetry, full determinism)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import HDFSCluster
from repro.cli import main
from repro.core.bipartite import BipartiteGraph
from repro.core.datanet import DataNet
from repro.errors import ConfigError, FaultError, SchedulingError
from repro.faults import (
    ChaosRunner,
    CompletionWin,
    FaultInjector,
    FaultPlan,
    FirstWinLedger,
    FlakyLink,
    HealthDetector,
    NetworkPartition,
    NodeCrash,
    RetryPolicy,
    SlowNode,
    validate_health,
)
from repro.hdfs.hedged import HedgedReader
from repro.hdfs.scrubber import ReadVerifier
from repro.mapreduce.apps.grep import grep_job
from repro.mapreduce.apps.histogram import histogram_job
from repro.mapreduce.apps.word_count import word_count_job
from repro.mapreduce.scheduler import LocalityScheduler
from repro.obs import Observability
from repro.obs.export import snapshot_text
from repro.sim.simulator import DiscreteEventSimulator
from repro.sim.tasks import SimTask
from tests.conftest import make_records


# ---------------------------------------------------------------------------
# plan validation


class TestGrayPlanValidation:
    def test_windowed_slow_node(self):
        s = SlowNode(1, factor=4.0, start=1.0, end=3.0)
        assert s.window == (1.0, 3.0)

    def test_zero_duration_window_rejected(self):
        with pytest.raises(ConfigError):
            SlowNode(1, factor=4.0, start=2.0, end=2.0)
        with pytest.raises(ConfigError):
            SlowNode(1, factor=4.0, start=3.0, end=1.0)
        with pytest.raises(ConfigError):
            FlakyLink(a=0, b=1, loss=0.1, start=2.0, end=2.0)
        with pytest.raises(ConfigError):
            NetworkPartition(nodes=(1,), start=2.0, heals_at=2.0)

    def test_overlapping_slow_windows_same_node_rejected(self):
        with pytest.raises(ConfigError, match="overlapping fault windows"):
            FaultPlan(
                slow_nodes=(
                    SlowNode(1, factor=2.0, start=0.0, end=5.0),
                    SlowNode(1, factor=3.0, start=4.0, end=6.0),
                )
            )

    def test_open_ended_window_overlaps_everything_after(self):
        with pytest.raises(ConfigError, match="overlapping fault windows"):
            FaultPlan(
                slow_nodes=(
                    SlowNode(1, factor=2.0, start=0.0),  # end=None → forever
                    SlowNode(1, factor=3.0, start=9.0, end=10.0),
                )
            )

    def test_adjacent_windows_allowed(self):
        plan = FaultPlan(
            slow_nodes=(
                SlowNode(1, factor=2.0, start=0.0, end=2.0),
                SlowNode(1, factor=4.0, start=2.0, end=4.0),
                SlowNode(2, factor=2.0, start=0.0),
            )
        )
        assert plan.has_gray and not plan.is_empty()

    def test_flaky_link_validation(self):
        with pytest.raises(ConfigError):  # self-loop
            FlakyLink(a=1, b=1, loss=0.1)
        with pytest.raises(ConfigError):  # loss out of range
            FlakyLink(a=0, b=1, loss=1.0)
        with pytest.raises(ConfigError):  # degrades nothing
            FlakyLink(a=0, b=1, loss=0.0, latency_s=0.0)
        link = FlakyLink(a=3, b=1, loss=0.2, latency_s=0.1)
        assert link.edge == (1, 3)  # canonical undirected form

    def test_overlapping_link_windows_same_edge_rejected(self):
        with pytest.raises(ConfigError, match="overlapping fault windows"):
            FaultPlan(
                flaky_links=(
                    FlakyLink(a=0, b=1, loss=0.1, start=0.0, end=5.0),
                    # same edge written in the other direction
                    FlakyLink(a=1, b=0, loss=0.2, start=3.0, end=6.0),
                )
            )

    def test_partition_scope_validation(self):
        with pytest.raises(ConfigError):  # no scope
            NetworkPartition(start=0.0, heals_at=1.0)
        with pytest.raises(ConfigError):  # two scopes
            NetworkPartition(nodes=(1,), rack=0, start=0.0, heals_at=1.0)
        with pytest.raises(ConfigError):  # duplicate members
            NetworkPartition(nodes=(1, 1), start=0.0, heals_at=1.0)

    def test_overlapping_partitions_sharing_a_node_rejected(self):
        with pytest.raises(ConfigError, match="overlapping fault windows"):
            FaultPlan(
                partitions=(
                    NetworkPartition(nodes=(1, 2), start=0.0, heals_at=5.0),
                    NetworkPartition(nodes=(2, 3), start=4.0, heals_at=6.0),
                )
            )

    def test_disjoint_partitions_allowed(self):
        plan = FaultPlan(
            partitions=(
                NetworkPartition(nodes=(1,), start=0.0, heals_at=2.0),
                NetworkPartition(nodes=(1,), start=3.0, heals_at=4.0),
            )
        )
        assert plan.has_gray

    def test_has_gray_false_for_failstop_plans(self):
        assert not FaultPlan(crashes=(NodeCrash(1, time=1.0),)).has_gray


# ---------------------------------------------------------------------------
# injector: windows, links, partitions


class TestGrayInjector:
    def test_windowed_slowdown(self):
        inj = FaultInjector(
            FaultPlan(slow_nodes=(SlowNode(1, factor=4.0, start=1.0, end=3.0),))
        )
        assert inj.slowdown(1, 0.5) == 1.0
        assert inj.slowdown(1, 1.0) == 4.0  # inclusive start
        assert inj.slowdown(1, 2.9) == 4.0
        assert inj.slowdown(1, 3.0) == 1.0  # exclusive end
        assert inj.slowdown(2, 2.0) == 1.0

    def test_link_penalty_latency_and_deterministic_loss(self):
        plan = FaultPlan(
            seed=9, flaky_links=(FlakyLink(a=0, b=2, loss=0.5, latency_s=0.1),)
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        costs_a = [a.link_penalty(0, 2, key=f"k{i}", base_cost=1.0) for i in range(40)]
        costs_b = [b.link_penalty(2, 0, key=f"k{i}", base_cost=1.0) for i in range(40)]
        assert costs_a == costs_b  # same seed, symmetric edge → same coins
        assert all(c in (0.1, 1.1) for c in costs_a)  # latency, ± one retransmit
        assert 0 < sum(c > 1.0 for c in costs_a) < 40  # the coin actually flips
        assert a.link_penalty(0, 1, key="k0", base_cost=1.0) == 0.0  # healthy edge

    def test_link_penalty_respects_window(self):
        inj = FaultInjector(
            FaultPlan(
                flaky_links=(
                    FlakyLink(a=0, b=2, latency_s=0.5, start=1.0, end=2.0),
                )
            )
        )
        assert inj.link_penalty(0, 2, time=0.5, key="x") == 0.0
        assert inj.link_penalty(0, 2, time=1.5, key="x") == 0.5
        assert inj.link_penalty(0, 2, time=2.0, key="x") == 0.0

    def test_partition_queries_require_resolution(self):
        inj = FaultInjector(
            FaultPlan(partitions=(NetworkPartition(nodes=(1,), start=0.0, heals_at=1.0),))
        )
        with pytest.raises(ConfigError, match="resolve_partitions"):
            inj.unreachable(1, 0.5)

    def test_resolved_partition_semantics(self):
        inj = FaultInjector(
            FaultPlan(
                partitions=(NetworkPartition(nodes=(1, 2), start=1.0, heals_at=3.0),)
            )
        )
        inj.resolve_partitions(list(range(6)))
        assert not inj.unreachable(1, 0.5)  # before the cut
        assert inj.unreachable(1, 1.0) and inj.unreachable(2, 2.9)
        assert not inj.unreachable(1, 3.0)  # healed
        assert not inj.unreachable(0, 2.0)  # majority side
        assert inj.same_side(1, 2, 2.0)  # both behind the cut
        assert not inj.same_side(0, 1, 2.0)
        assert inj.same_side(0, 3, 2.0)
        assert inj.same_side(0, 1, 0.5)  # inactive window

    def test_rack_scope_resolution(self):
        inj = FaultInjector(
            FaultPlan(partitions=(NetworkPartition(rack=1, start=0.0, heals_at=2.0),))
        )
        resolved = inj.resolve_partitions(
            list(range(6)), rack_of=lambda n: n % 3
        )
        assert resolved[0].sorted_nodes() == [1, 4]

    def test_rack_scope_without_topology_rejected(self):
        inj = FaultInjector(
            FaultPlan(partitions=(NetworkPartition(rack=1, start=0.0, heals_at=2.0),))
        )
        with pytest.raises(ConfigError):
            inj.resolve_partitions(list(range(6)))

    def test_cut_covering_every_node_rejected(self):
        inj = FaultInjector(
            FaultPlan(
                partitions=(NetworkPartition(nodes=(0, 1), start=0.0, heals_at=1.0),)
            )
        )
        with pytest.raises(ConfigError):
            inj.resolve_partitions([0, 1])

    def test_unknown_partition_node_rejected(self):
        inj = FaultInjector(
            FaultPlan(
                partitions=(NetworkPartition(nodes=(99,), start=0.0, heals_at=1.0),)
            )
        )
        with pytest.raises(ConfigError):
            inj.resolve_partitions([0, 1, 2])


# ---------------------------------------------------------------------------
# health detection


class TestHealthDetector:
    def test_insufficient_evidence_is_neutral(self):
        det = HealthDetector(expected_interval_s=1.0)
        assert det.suspicion(7, now=100.0) == 0.0
        assert det.health_score(7) == 1.0
        det.record(7, 1.0)
        assert det.health_score(7) == 1.0  # one arrival is still no interval

    def test_slow_node_scores_inverse_factor(self):
        det = HealthDetector(expected_interval_s=1.0)
        inj = FaultInjector(FaultPlan(slow_nodes=(SlowNode(1, factor=4.0),)))
        det.observe_heartbeats([0, 1], inj, count=8)
        assert det.health_score(0) == 1.0
        assert det.health_score(1) == pytest.approx(0.25)

    def test_health_clamped_to_min_score(self):
        det = HealthDetector(expected_interval_s=1.0, min_score=0.1)
        inj = FaultInjector(FaultPlan(slow_nodes=(SlowNode(1, factor=100.0),)))
        det.observe_heartbeats([1], inj, count=4)
        assert det.health_score(1) == 0.1

    def test_suspicion_grows_with_silence(self):
        det = HealthDetector(expected_interval_s=1.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            det.record(5, t)
        quiet = det.suspicion(5, now=4.5)
        silent = det.suspicion(5, now=14.0)
        assert 0.0 <= quiet < silent
        # φ = elapsed / (mean · ln 10); mean interval is exactly 1 here
        assert silent == pytest.approx(10.0 / math.log(10.0))
        assert det.suspected([5], now=14.0) == [5]
        assert det.suspected([5], now=4.1) == []

    def test_partitioned_node_goes_suspect(self):
        det = HealthDetector(expected_interval_s=1.0)
        inj = FaultInjector(
            FaultPlan(
                partitions=(NetworkPartition(nodes=(1,), start=3.0, heals_at=60.0),)
            )
        )
        inj.resolve_partitions([0, 1, 2])
        det.observe_heartbeats([0, 1], inj, count=8)
        assert det.suspicion(1, now=8.0) > det.suspicion(0, now=8.0)

    def test_non_monotonic_arrivals_rejected(self):
        det = HealthDetector()
        det.record(1, 5.0)
        with pytest.raises(ConfigError):
            det.record(1, 4.0)

    def test_validate_health(self):
        validate_health(None)
        validate_health({1: 0.5, 2: 1.0})
        with pytest.raises(ConfigError):
            validate_health({1: 0.0})
        with pytest.raises(ConfigError):
            validate_health({1: 1.5})

    def test_export_publishes_gauges(self):
        obs = Observability.create()
        det = HealthDetector(expected_interval_s=1.0)
        inj = FaultInjector(FaultPlan(slow_nodes=(SlowNode(1, factor=4.0),)))
        det.observe_heartbeats([0, 1], inj, count=4)
        det.export(obs, [0, 1], now=4.0)
        text = snapshot_text(metrics=obs.metrics)
        assert "node_suspicion_phi" in text
        assert "node_health_score" in text
        assert "node=1" in text


# ---------------------------------------------------------------------------
# first-win dedup (satellite: hypothesis property)


class TestFirstWinLedger:
    def test_first_offer_wins(self):
        led = FirstWinLedger()
        assert led.offer("k", "primary", 1.0, nbytes=10)
        assert not led.offer("k", "hedge", 0.5, nbytes=10)
        assert led.winner("k") == CompletionWin("primary", 1.0, 10)
        assert led.counted_bytes == 10
        assert led.duplicates == 1 and led.duplicate_bytes == 10
        assert "k" in led and len(led) == 1

    def test_invalid_offers_rejected(self):
        led = FirstWinLedger()
        with pytest.raises(ConfigError):
            led.offer("k", "p", -1.0)
        with pytest.raises(ConfigError):
            led.offer("k", "p", 1.0, nbytes=-1)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # key
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.integers(min_value=0, max_value=1000),  # nbytes
            ),
            max_size=40,
        )
    )
    def test_never_double_counts_bytes(self, offers):
        """First-win semantics: counted bytes == one completion per key,
        regardless of how many duplicate/speculative copies report in."""
        led = FirstWinLedger()
        first_for = {}
        for i, (key, arrival, nbytes) in enumerate(offers):
            won = led.offer(key, f"copy-{i}", arrival, nbytes=nbytes)
            if key not in first_for:
                first_for[key] = (arrival, nbytes)
                assert won
            else:
                assert not won
        assert led.counted_bytes == sum(nb for _, nb in first_for.values())
        assert led.offers == len(offers)
        assert led.duplicates == len(offers) - len(first_for)
        assert sorted(led.keys()) == sorted(first_for)
        for key, (arrival, nbytes) in first_for.items():
            win = led.winner(key)
            assert (win.arrival, win.nbytes) == (arrival, nbytes)


# ---------------------------------------------------------------------------
# hedged reads


def _tiny_cluster(num_nodes=4, seed=3):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=2,
        rng=np.random.default_rng(seed),
    )
    dataset = cluster.write_dataset(
        "d", make_records({"hot": 40}, payload_len=30)
    )
    return cluster, dataset


READ_LOCAL = lambda n: 0.01  # noqa: E731
READ_REMOTE = lambda n: 0.02  # noqa: E731
WRITE_LOCAL = lambda n: 0.005  # noqa: E731


class TestHedgedReader:
    def _reader(self, plan, **kw):
        cluster, dataset = _tiny_cluster()
        inj = FaultInjector(plan)
        if plan.partitions:
            inj.resolve_partitions(sorted(cluster.datanodes))
        kw.setdefault("min_samples", 2)
        kw.setdefault("window", 8)
        return cluster, dataset, HedgedReader(cluster, inj, **kw)

    def _read(self, reader, node, replicas, *, when=0.0, block=0):
        return reader.read_cost(
            "d", block, node, tuple(replicas), 100,
            READ_LOCAL, READ_REMOTE, WRITE_LOCAL, when=when,
        )

    def test_local_read_never_hedges(self):
        _, _, reader = self._reader(FaultPlan())
        assert self._read(reader, 1, (1, 2)) == READ_LOCAL(100)
        assert reader.hedges_issued == 0 and len(reader.ledger) == 0

    def test_unarmed_window_never_hedges(self):
        _, _, reader = self._reader(
            FaultPlan(slow_nodes=(SlowNode(1, factor=10.0),)), min_samples=8
        )
        cost = self._read(reader, 3, (1,))
        assert cost == pytest.approx(0.2)  # slow primary, but no trigger yet
        assert reader.hedges_issued == 0

    def test_slow_primary_triggers_hedge_and_backup_wins(self):
        _, _, reader = self._reader(
            FaultPlan(slow_nodes=(SlowNode(1, factor=10.0),))
        )
        for block in (1, 2):  # warm the window with healthy reads
            self._read(reader, 3, (2,), block=block)
        trigger = reader.threshold()
        assert trigger == pytest.approx(0.02)
        # no detector → repr ranking → the slow node 1 becomes primary
        cost = self._read(reader, 3, (1, 2), block=0)
        assert reader.hedges_issued == 1 and reader.hedges_won == 1
        # backup launched at the trigger, served at healthy speed
        assert cost == pytest.approx(trigger + 0.02)
        assert reader.wasted_seconds == pytest.approx(cost)  # loser ran from 0
        win = reader.ledger.winner("d/0/r3")
        assert win.source == "hedge:2"
        assert reader.ledger.duplicates == 1  # the primary reported second

    def test_healthy_primary_no_hedge(self):
        _, _, reader = self._reader(FaultPlan())
        for block in (1, 2, 3):
            self._read(reader, 3, (2,), block=block)
        assert reader.hedges_issued == 0
        assert reader.ledger.counted_bytes == 300  # one win per read

    def test_detector_steers_primary_away_from_slow_replica(self):
        det = HealthDetector(expected_interval_s=1.0)
        plan = FaultPlan(slow_nodes=(SlowNode(1, factor=10.0),))
        det.observe_heartbeats([0, 1, 2, 3], FaultInjector(plan), count=4)
        _, _, reader = self._reader(plan, detector=det)
        cost = self._read(reader, 3, (1, 2))
        assert cost == pytest.approx(0.02)  # healthy node 2 chosen as primary
        assert reader.hedges_issued == 0

    def test_partition_filters_replicas(self):
        plan = FaultPlan(
            partitions=(NetworkPartition(nodes=(1, 2), start=0.0, heals_at=5.0),)
        )
        _, _, reader = self._reader(plan)
        with pytest.raises(FaultError):
            self._read(reader, 3, (1, 2), when=1.0)  # every replica cut
        assert self._read(reader, 3, (0, 1), when=1.0) == pytest.approx(0.02)
        # after the heal the cut replicas serve again
        assert self._read(reader, 3, (1, 2), when=5.0) == pytest.approx(0.02)

    def test_corrupt_replica_delegates_to_verifier(self):
        cluster, dataset = _tiny_cluster()
        node = dataset.placement()[0][0]
        cluster.corrupt_replica("d", node, 0)
        verifier = ReadVerifier(cluster)
        reader = HedgedReader(cluster, FaultInjector(FaultPlan()), verify=verifier)
        replicas = dataset.placement()[0]
        other = next(n for n in cluster.datanodes if n not in replicas)
        self._read(reader, other, replicas)
        assert verifier.detected == 1  # the wrapped verifier saw the rot

    def test_flaky_link_penalty_reaches_service_time(self):
        _, _, reader = self._reader(
            FaultPlan(flaky_links=(FlakyLink(a=3, b=2, loss=0.0, latency_s=0.5),)),
        )
        assert self._read(reader, 3, (2,)) == pytest.approx(0.52)

    def test_deterministic_across_instances(self):
        plan = FaultPlan(
            seed=7,
            slow_nodes=(SlowNode(1, factor=10.0),),
            flaky_links=(FlakyLink(a=3, b=2, loss=0.5, latency_s=0.1),),
        )
        costs = []
        for _ in range(2):
            _, _, reader = self._reader(plan)
            run = [self._read(reader, 3, (2,), block=b) for b in range(4)]
            run.append(self._read(reader, 3, (1, 2), block=9))
            costs.append((run, reader.hedges_issued, reader.hedges_won))
        assert costs[0] == costs[1]

    def test_bad_config_rejected(self):
        cluster, _ = _tiny_cluster()
        inj = FaultInjector(FaultPlan())
        with pytest.raises(ConfigError):
            HedgedReader(cluster, inj, percentile=1.0)
        with pytest.raises(ConfigError):
            HedgedReader(cluster, inj, min_samples=1)


# ---------------------------------------------------------------------------
# health- and partition-aware scheduling


class TestGrayScheduling:
    def _datanet(self, num_nodes=8, seed=11):
        cluster = HDFSCluster(
            num_nodes=num_nodes,
            block_size=2048,
            replication=3,
            rng=np.random.default_rng(seed),
        )
        dataset = cluster.write_dataset(
            "d", make_records({"hot": 800, "cold": 60}, payload_len=30)
        )
        return dataset, DataNet.build(dataset, alpha=0.3)

    def test_restrict_drops_stranded_blocks(self):
        graph = BipartiteGraph(
            {0: [1, 2], 1: [3]}, {0: 100, 1: 50}, nodes=[1, 2, 3]
        )
        sub, stranded = graph.restrict([3])
        assert stranded == [0]
        assert sub.num_blocks == 1 and sub.nodes == [3]

    def test_restrict_to_nothing_rejected(self):
        graph = BipartiteGraph({0: [1]}, {0: 100}, nodes=[1])
        with pytest.raises(SchedulingError):
            graph.restrict([99])

    def test_gray_schedule_avoids_unreachable_nodes(self):
        dataset, datanet = self._datanet()
        cut = [0, 4]
        assignment, stranded = datanet.gray_schedule("hot", unreachable=cut)
        for node in cut:
            assert not assignment.blocks_by_node.get(node)
        placement = dataset.placement()
        for b in stranded:
            assert set(placement[b]) <= set(cut)

    def test_gray_schedule_health_shifts_load_off_suspects(self):
        _, datanet = self._datanet()
        plain = datanet.schedule("hot")
        health = {n: (0.05 if n in (1, 2) else 1.0) for n in range(8)}
        biased, stranded = datanet.gray_schedule("hot", health=health)
        assert stranded == []
        assert sum(biased.workload_by_node.get(n, 0) for n in (1, 2)) < sum(
            plain.workload_by_node.get(n, 0) for n in (1, 2)
        )
        # every block is still scheduled exactly once
        assert sorted(
            b for bs in biased.blocks_by_node.values() for b in bs
        ) == sorted(b for bs in plain.blocks_by_node.values() for b in bs)

    def test_locality_scheduler_capacity_validation(self):
        with pytest.raises(ConfigError):
            LocalityScheduler(capacities={1: 0.0})
        with pytest.raises(ConfigError):
            LocalityScheduler(capacities={1: 1.5})

    def test_locality_scheduler_capacities_shift_load(self):
        graph = BipartiteGraph(
            {b: [0, 1] for b in range(12)},
            {b: 100 for b in range(12)},
            nodes=[0, 1],
        )
        even = LocalityScheduler().schedule(graph)
        skewed = LocalityScheduler(capacities={1: 0.25}).schedule(graph)
        assert len(skewed.blocks_by_node[1]) < len(even.blocks_by_node[1])


# ---------------------------------------------------------------------------
# partitions inside the discrete-event simulator


class TestSimulatorPartitions:
    def _tasks(self, n=6, duration=1.0):
        return [
            SimTask(task_id=f"t{i}", node=i % 3, duration=duration, kind="map")
            for i in range(n)
        ]

    def test_partitioned_node_work_is_relocated(self):
        plan = FaultPlan(
            partitions=(NetworkPartition(nodes=(0,), start=0.5, heals_at=50.0),)
        )
        sim = DiscreteEventSimulator()
        result = sim.run(self._tasks(), injector=FaultInjector(plan))
        assert sorted(result.timeline.tasks) == [f"t{i}" for i in range(6)]
        # nothing finishes on node 0 after the cut (its tasks moved away)
        for tid, task in result.timeline.tasks.items():
            assert not (task.node == 0 and result.timeline.end_of(tid) > 0.5)

    def test_healed_node_takes_work_again(self):
        plan = FaultPlan(
            partitions=(NetworkPartition(nodes=(0,), start=0.0, heals_at=0.25),)
        )
        sim = DiscreteEventSimulator()
        tasks = [
            SimTask(task_id=f"t{i}", node=0, duration=0.5, kind="map")
            for i in range(2)
        ] + [SimTask(task_id="other", node=1, duration=0.1, kind="map")]
        result = sim.run(tasks, injector=FaultInjector(plan))
        assert result.timeline.makespan >= 0.25 + 0.5
        assert sorted(result.timeline.tasks) == ["other", "t0", "t1"]

    def test_partition_run_deterministic(self):
        plan = FaultPlan(
            seed=3,
            partitions=(NetworkPartition(nodes=(1,), start=0.4, heals_at=2.0),),
            slow_nodes=(SlowNode(2, factor=3.0, start=0.0, end=1.0),),
        )
        runs = [
            DiscreteEventSimulator().run(
                self._tasks(), injector=FaultInjector(plan)
            )
            for _ in range(2)
        ]
        assert repr(runs[0].timeline) == repr(runs[1].timeline)


# ---------------------------------------------------------------------------
# end-to-end acceptance


def _gray_plan():
    """30% slow nodes (3/10 at 8×), flaky uplinks, one rack cut that heals
    mid-job — the ISSUE acceptance scenario."""
    return FaultPlan(
        seed=5,
        slow_nodes=(
            SlowNode(1, factor=8.0),
            SlowNode(4, factor=8.0),
            SlowNode(7, factor=8.0),
        ),
        flaky_links=tuple(
            FlakyLink(a=a, b=9, loss=0.2, latency_s=0.3) for a in (0, 2, 3, 6, 8)
        ),
        partitions=(NetworkPartition(rack=1, start=0.5, heals_at=1.5),),
    )


def _gray_fresh(seed=11):
    cluster = HDFSCluster(
        num_nodes=10,
        block_size=1024,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    dataset = cluster.write_dataset(
        "d", make_records({"hot": 2000, "cold": 600}, payload_len=30)
    )
    return cluster, dataset


def _gray_run(job, *, detect=True, hedge=True, obs=None):
    cluster, dataset = _gray_fresh()
    runner = ChaosRunner(
        cluster,
        _gray_plan(),
        retry=RetryPolicy(heartbeat_timeout_s=0.5),
        detect=detect,
        hedge=hedge,
        **({"obs": obs} if obs is not None else {}),
    )
    return runner.run(dataset, "hot", job)


class TestGrayEndToEnd:
    @pytest.mark.parametrize(
        "job_factory",
        [word_count_job, lambda: grep_job("aa"), histogram_job],
        ids=["word_count", "grep", "histogram"],
    )
    def test_every_workload_family_byte_identical_and_bounded(self, job_factory):
        report = _gray_run(job_factory())
        assert report.output_matches_baseline
        assert report.makespan < 2.0 * report.baseline.makespan
        assert report.partition_events == 1
        assert report.deferred_blocks  # the all-rack-1 block waited for heal
        assert report.hedged_reads > 0 and report.hedges_won > 0
        assert 0 < report.health[1] < 0.2  # slow node seen by the detector
        assert report.health[0] == 1.0

    def test_detector_off_is_much_worse_but_still_correct(self):
        with_det = _gray_run(word_count_job())
        without = _gray_run(word_count_job(), detect=False, hedge=False)
        assert without.output_matches_baseline  # safety never depends on it
        assert without.hedged_reads == 0 and without.health == {}
        assert with_det.makespan < 2.0 * with_det.baseline.makespan
        assert without.makespan > 2.0 * without.baseline.makespan
        assert with_det.makespan < without.makespan

    def test_gray_run_fully_deterministic(self):
        a = _gray_run(word_count_job())
        b = _gray_run(word_count_job())
        assert a.job == b.job
        assert a.makespan == b.makespan
        assert a.hedged_reads == b.hedged_reads
        assert a.hedges_won == b.hedges_won
        assert a.hedge_wasted_seconds == b.hedge_wasted_seconds
        assert a.rescheduled_blocks == b.rescheduled_blocks
        assert a.deferred_blocks == b.deferred_blocks
        assert a.attempts_histogram == b.attempts_histogram

    def test_gray_with_crash_composes(self):
        cluster, dataset = _gray_fresh()
        plan = FaultPlan(
            seed=5,
            crashes=(NodeCrash(3, time=2.0),),
            slow_nodes=(SlowNode(1, factor=8.0),),
            partitions=(NetworkPartition(rack=1, start=0.5, heals_at=1.5),),
        )
        runner = ChaosRunner(
            cluster, plan, retry=RetryPolicy(heartbeat_timeout_s=0.5)
        )
        report = runner.run(dataset, "hot", word_count_job())
        assert report.output_matches_baseline
        assert report.dead_nodes == [3]
        assert report.partition_events == 1

    def test_telemetry_exported_through_obs(self):
        obs = Observability.create()
        report = _gray_run(word_count_job(), obs=obs)
        text = snapshot_text(tracer=obs.tracer, metrics=obs.metrics)
        assert "node_suspicion_phi" in text
        assert "node_health_score" in text
        assert "partition_events_total" in text
        assert "hedged_reads_total" in text
        assert report.hedged_reads > 0

    def test_summary_includes_gray_lines(self):
        report = _gray_run(word_count_job())
        text = report.summary().format()
        assert "partition events" in text
        assert "hedged reads" in text

    def test_failstop_summary_unchanged(self):
        # zero gray fields keep the report byte-compatible with pre-gray runs
        cluster, dataset = _gray_fresh()
        report = ChaosRunner(cluster, FaultPlan()).run(
            dataset, "hot", word_count_job()
        )
        text = report.summary().format()
        assert "partition events" not in text
        assert "hedged reads" not in text

    def test_driver_restarts_with_network_faults_rejected(self):
        from repro.faults import DriverRestart

        cluster, dataset = _gray_fresh()
        plan = FaultPlan(
            driver_restarts=(DriverRestart(1),),
            partitions=(NetworkPartition(rack=1, start=0.5, heals_at=1.5),),
        )
        with pytest.raises(ConfigError):
            ChaosRunner(cluster, plan)

    def test_unknown_link_endpoint_rejected(self):
        cluster, dataset = _gray_fresh()
        plan = FaultPlan(flaky_links=(FlakyLink(a=0, b=99, latency_s=0.1),))
        with pytest.raises(ConfigError):
            ChaosRunner(cluster, plan)


class TestGrayCli:
    def test_cli_gray_scenario_exits_clean(self, capsys):
        rc = main(
            [
                "chaos",
                "--nodes", "8",
                "--seed", "3",
                "-n", "4000",
                "-k", "50",
                "--slow-node", "1@8:0-5",
                "--slow-node", "4@8",
                "--flaky-link", "0-2@0.3:0.01",
                "--partition", "rack1@0-2.5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "partition events" in out

    def test_cli_no_detector_exits_clean(self, capsys):
        rc = main(
            [
                "chaos",
                "--nodes", "8",
                "--seed", "3",
                "-n", "4000",
                "-k", "50",
                "--slow-node", "1@8",
                "--partition", "1,5@0-2.5",
                "--no-detector",
                "--no-hedge",
            ]
        )
        assert rc == 0

    def test_cli_bad_specs_rejected(self, capsys):
        for argv in (
            ["chaos", "--slow-node", "1"],
            ["chaos", "--flaky-link", "nonsense"],
            ["chaos", "--partition", "rack1"],
        ):
            assert main(argv) == 2
