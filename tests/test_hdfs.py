"""Tests for the HDFS substrate: records, blocks, placement, cluster."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    BlockNotFoundError,
    ConfigError,
    ReplicationError,
    StorageError,
)
from repro.hdfs import (
    Block,
    DataNode,
    HDFSCluster,
    NameNode,
    RackAwarePlacement,
    RandomPlacement,
    Record,
    RoundRobinPlacement,
    pack_records,
)
from tests.conftest import make_records


class TestRecord:
    def test_nbytes_counts_all_fields(self):
        r = Record("movie-1", 12.0, "hello")
        assert r.nbytes == len("movie-1") + len("12.000") + len("hello") + 2

    def test_serialize_roundtrip(self):
        r = Record("m1", 3.5, "some\ttext-free payload")
        # payload may not contain tabs for roundtrip; use clean payload
        r = Record("m1", 3.5, "payload body")
        assert Record.deserialize(r.serialize()) == r

    def test_deserialize_rejects_malformed(self):
        with pytest.raises(ConfigError):
            Record.deserialize("only-one-field")
        with pytest.raises(ConfigError):
            Record.deserialize("a\tnot-a-number\tx")

    def test_rejects_empty_sub_id(self):
        with pytest.raises(ConfigError):
            Record("", 0.0)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ConfigError):
            Record("a", -1.0)

    def test_frozen(self):
        r = Record("a", 0.0)
        with pytest.raises(AttributeError):
            r.sub_id = "b"  # type: ignore[misc]


class TestBlock:
    def test_append_until_full(self):
        b = Block(0, capacity_bytes=100)
        r = Record("s", 0.0, "x" * 20)  # nbytes = 1+5+20+2 = 28
        assert b.try_append(r)
        assert b.try_append(r)
        assert b.try_append(r)
        assert not b.try_append(r)  # 4th would exceed 100
        assert b.num_records == 3

    def test_oversized_record_raises_on_empty_block(self):
        b = Block(0, capacity_bytes=10)
        with pytest.raises(StorageError):
            b.try_append(Record("s", 0.0, "x" * 100))
        assert b.num_records == 0

    def test_oversized_record_on_partial_block_defers(self):
        # a non-empty block never raises: only the *empty* block can prove
        # the record fits nowhere, so the caller gets False and retries
        # against a fresh block (where the oversize check then fires)
        b = Block(0, capacity_bytes=100)
        assert b.try_append(Record("s", 0.0, "x" * 20))
        huge = Record("s", 0.0, "x" * 200)
        assert not b.try_append(huge)
        assert b.num_records == 1
        with pytest.raises(StorageError):
            Block(1, capacity_bytes=100).try_append(huge)

    def test_scan_yields_sid_and_bytes(self):
        b = Block(0, capacity_bytes=1000)
        r = Record("s1", 0.0, "abc")
        b.try_append(r)
        assert list(b.scan()) == [("s1", r.nbytes)]

    def test_subdataset_sizes_ground_truth(self):
        b = Block(0, capacity_bytes=10_000)
        for i in range(6):
            b.try_append(Record(f"s{i % 2}", float(i), "pp"))
        sizes = b.subdataset_sizes()
        assert set(sizes) == {"s0", "s1"}
        assert sizes["s0"] == sizes["s1"]
        assert sum(sizes.values()) == b.used_bytes

    def test_filter(self):
        b = Block(0, capacity_bytes=10_000)
        for i in range(4):
            b.try_append(Record(f"s{i % 2}", float(i)))
        assert len(b.filter("s0")) == 2
        assert all(r.sub_id == "s0" for r in b.filter("s0"))

    def test_validation(self):
        with pytest.raises(ConfigError):
            Block(-1)
        with pytest.raises(ConfigError):
            Block(0, capacity_bytes=0)


class TestPackRecords:
    def test_sequential_ids(self):
        recs = make_records({"a": 50}, payload_len=30)
        blocks = pack_records(recs, block_size=500)
        assert [b.block_id for b in blocks] == list(range(len(blocks)))
        assert len(blocks) > 1

    def test_order_preserved(self):
        recs = make_records({"a": 10, "b": 10}, payload_len=10)
        blocks = pack_records(recs, block_size=10**6)
        flat = [r for b in blocks for r in b.records()]
        assert flat == recs

    def test_no_record_lost(self):
        recs = make_records({"a": 33, "b": 21}, payload_len=25)
        blocks = pack_records(recs, block_size=300)
        assert sum(b.num_records for b in blocks) == 54

    def test_blocks_respect_capacity(self):
        recs = make_records({"a": 100}, payload_len=40)
        blocks = pack_records(recs, block_size=256)
        assert all(b.used_bytes <= 256 for b in blocks)

    def test_bad_block_size(self):
        with pytest.raises(ConfigError):
            pack_records([], 0)

    def test_empty_stream_single_empty_block(self):
        blocks = pack_records([], 100)
        assert len(blocks) == 1
        assert blocks[0].num_records == 0

    @given(st.integers(64, 512), st.integers(1, 120))
    @settings(max_examples=30, deadline=None)
    def test_property_conservation(self, block_size, n):
        recs = [Record("s", float(i), "p" * 10) for i in range(n)]
        blocks = pack_records(recs, block_size)
        assert sum(b.num_records for b in blocks) == n
        assert sum(b.used_bytes for b in blocks) == sum(r.nbytes for r in recs)


class TestPlacementPolicies:
    def test_random_distinct_nodes(self):
        p = RandomPlacement(3, rng=np.random.default_rng(0))
        for bid in range(50):
            nodes = p.place(bid, list(range(10)))
            assert len(nodes) == 3
            assert len(set(nodes)) == 3

    def test_random_clamps_to_cluster_size(self):
        p = RandomPlacement(3, rng=np.random.default_rng(0))
        assert len(p.place(0, [0, 1])) == 2

    def test_random_empty_cluster_raises(self):
        p = RandomPlacement(3, rng=np.random.default_rng(0))
        with pytest.raises(ReplicationError):
            p.place(0, [])

    def test_round_robin_deterministic_striping(self):
        p = RoundRobinPlacement(3)
        assert p.place(0, [0, 1, 2, 3]) == [0, 1, 2]
        assert p.place(3, [0, 1, 2, 3]) == [3, 0, 1]

    def test_round_robin_balanced_block_counts(self):
        p = RoundRobinPlacement(2)
        counts = {n: 0 for n in range(4)}
        for bid in range(40):
            for n in p.place(bid, list(range(4))):
                counts[n] += 1
        assert max(counts.values()) == min(counts.values())

    def test_rack_aware_spans_two_racks(self):
        p = RackAwarePlacement(3, num_racks=4, rng=np.random.default_rng(1))
        nodes = list(range(16))
        for bid in range(50):
            placed = p.place(bid, nodes)
            assert len(set(placed)) == 3
            racks = {p.rack_of(n, 16) for n in placed}
            assert len(racks) == 2  # replicas 2 and 3 share a rack != replica 1's

    def test_rack_aware_single_rack_degrades(self):
        p = RackAwarePlacement(3, num_racks=1, rng=np.random.default_rng(2))
        placed = p.place(0, list(range(5)))
        assert len(set(placed)) == 3

    def test_replication_validation(self):
        with pytest.raises(ConfigError):
            RandomPlacement(0)
        with pytest.raises(ConfigError):
            RackAwarePlacement(3, num_racks=0)


class TestNameNode:
    def test_register_and_lookup(self):
        nn = NameNode()
        nn.register_block("d", 0, 100, [1, 2, 3])
        assert nn.blocks_of("d") == [0]
        assert nn.block_locations("d", 0) == (1, 2, 3)
        assert nn.dataset_bytes("d") == 100

    def test_duplicate_registration_rejected(self):
        nn = NameNode()
        nn.register_block("d", 0, 100, [1])
        with pytest.raises(StorageError):
            nn.register_block("d", 0, 50, [2])

    def test_unknown_dataset(self):
        nn = NameNode()
        with pytest.raises(BlockNotFoundError):
            nn.blocks_of("nope")
        with pytest.raises(BlockNotFoundError):
            nn.block_meta("nope", 0)

    def test_placement_map(self):
        nn = NameNode()
        nn.register_block("d", 0, 10, [1])
        nn.register_block("d", 1, 10, [2, 3])
        assert nn.placement("d") == {0: (1,), 1: (2, 3)}

    def test_blocks_on_node(self):
        nn = NameNode()
        nn.register_block("d", 0, 10, [1, 2])
        nn.register_block("e", 0, 10, [2])
        assert nn.blocks_on_node(2) == [("d", 0), ("e", 0)]

    def test_meta_validation(self):
        nn = NameNode()
        with pytest.raises(ConfigError):
            nn.register_block("d", 0, -1, [1])
        with pytest.raises(ConfigError):
            nn.register_block("d", 1, 10, [])
        with pytest.raises(ConfigError):
            nn.register_block("d", 2, 10, [1, 1])


class TestDataNode:
    def test_store_and_get(self):
        dn = DataNode(0)
        b = Block(0, 100)
        dn.store_replica("d", b)
        assert dn.has_replica("d", 0)
        assert dn.get_replica("d", 0) is b

    def test_double_store_rejected(self):
        dn = DataNode(0)
        b = Block(0, 100)
        dn.store_replica("d", b)
        with pytest.raises(StorageError):
            dn.store_replica("d", b)

    def test_missing_replica(self):
        dn = DataNode(0)
        with pytest.raises(StorageError):
            dn.get_replica("d", 0)

    def test_used_bytes(self):
        dn = DataNode(0)
        b = Block(0, 1000)
        b.try_append(Record("s", 0.0, "xyz"))
        dn.store_replica("d", b)
        assert dn.used_bytes() == b.used_bytes


class TestHDFSCluster:
    def test_write_dataset_replication_invariant(self, small_cluster):
        recs = make_records({"a": 40, "b": 40}, payload_len=30)
        ds = small_cluster.write_dataset("d", recs)
        for bid, replicas in ds.placement().items():
            assert len(set(replicas)) == 3
            for node in replicas:
                assert small_cluster.datanodes[node].has_replica("d", bid)

    def test_dataset_total_bytes_matches_records(self, small_cluster):
        recs = make_records({"a": 40}, payload_len=30)
        ds = small_cluster.write_dataset("d", recs)
        assert ds.total_bytes == sum(r.nbytes for r in recs)

    def test_duplicate_dataset_rejected(self, small_cluster):
        small_cluster.write_dataset("d", make_records({"a": 3}))
        with pytest.raises(ConfigError):
            small_cluster.write_dataset("d", make_records({"a": 3}))

    def test_dataset_view_lookup(self, small_cluster):
        small_cluster.write_dataset("d", make_records({"a": 3}))
        assert small_cluster.dataset("d").num_blocks >= 1
        with pytest.raises(BlockNotFoundError):
            small_cluster.dataset("unknown")

    def test_subdataset_ground_truth(self, small_cluster):
        recs = make_records({"a": 30, "b": 10}, payload_len=30)
        ds = small_cluster.write_dataset("d", recs)
        total_a = ds.subdataset_total_bytes("a")
        assert total_a == sum(r.nbytes for r in recs if r.sub_id == "a")
        per_block = ds.subdataset_bytes_per_block("a")
        assert sum(per_block.values()) == total_a
        assert ds.subdataset_ids() == ["a", "b"]
        assert ds.subdataset_sizes()["b"] == ds.subdataset_total_bytes("b")

    def test_records_of(self, small_cluster):
        recs = make_records({"a": 7, "b": 2}, payload_len=10)
        ds = small_cluster.write_dataset("d", recs)
        got = ds.records_of("a")
        assert len(got) == 7
        assert all(r.sub_id == "a" for r in got)

    def test_scan_blocks_matches_ground_truth(self, small_cluster):
        recs = make_records({"a": 20, "b": 20}, payload_len=30)
        ds = small_cluster.write_dataset("d", recs)
        scanned_total = sum(
            nbytes for _bid, obs in ds.scan_blocks() for _sid, nbytes in obs
        )
        assert scanned_total == ds.total_bytes

    def test_rack_striping(self):
        c = HDFSCluster(num_nodes=8, num_racks=4, rng=np.random.default_rng(0))
        assert c.rack_of(0) == 0
        assert c.rack_of(5) == 1
        with pytest.raises(ConfigError):
            c.rack_of(99)

    def test_validation(self):
        with pytest.raises(ConfigError):
            HDFSCluster(num_nodes=0)
        with pytest.raises(ConfigError):
            HDFSCluster(num_nodes=2, block_size=0)
        with pytest.raises(ConfigError):
            HDFSCluster(num_nodes=2, num_racks=0)


class TestLocalitySchedulerDelay:
    def test_stock_scheduler_has_delay_patience(self):
        from repro.core.bipartite import BipartiteGraph
        from repro.hdfs import HDFSCluster
        from repro.mapreduce.scheduler import LocalityScheduler

        placement = {b: [5, 6, 7] for b in range(3)}
        g = BipartiteGraph(placement, {b: 10 for b in range(3)},
                           nodes=list(range(8)))
        a = LocalityScheduler().schedule(g)
        assert a.locality_fraction == 1.0
