"""Tests for incremental ingest: dataset appends + DataNet.extend."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster, Record
from repro.core.bucketizer import BucketSpec
from repro.errors import BlockNotFoundError, ConfigError, MetadataError
from tests.conftest import make_records


@pytest.fixture
def growing(small_cluster):
    first = make_records({"hot": 80, "cold": 20}, payload_len=40)
    dataset = small_cluster.write_dataset("logs", first)
    datanet = DataNet.build(
        dataset, alpha=0.5, spec=BucketSpec.for_block_size(small_cluster.block_size)
    )
    return small_cluster, dataset, datanet


class TestAppendRecords:
    def test_block_ids_continue(self, growing):
        cluster, dataset, _ = growing
        before = dataset.block_ids
        cluster.append_records("logs", make_records({"hot": 40}, payload_len=40))
        after = dataset.block_ids
        assert after[: len(before)] == before
        assert min(after[len(before):]) > max(before)

    def test_appended_records_visible(self, growing):
        cluster, dataset, _ = growing
        cluster.append_records("logs", make_records({"new-topic": 30}, payload_len=40))
        assert dataset.subdataset_total_bytes("new-topic") > 0

    def test_existing_blocks_untouched(self, growing):
        cluster, dataset, _ = growing
        sizes_before = {bid: dataset.block(bid).used_bytes for bid in dataset.block_ids}
        cluster.append_records("logs", make_records({"hot": 40}, payload_len=40))
        for bid, size in sizes_before.items():
            assert dataset.block(bid).used_bytes == size

    def test_replication_on_new_blocks(self, growing):
        cluster, dataset, _ = growing
        before = set(dataset.block_ids)
        cluster.append_records("logs", make_records({"hot": 40}, payload_len=40))
        for bid in set(dataset.block_ids) - before:
            assert len(dataset.placement()[bid]) == 3

    def test_empty_append_noop(self, growing):
        cluster, dataset, _ = growing
        before = dataset.num_blocks
        cluster.append_records("logs", [])
        assert dataset.num_blocks == before

    def test_unknown_dataset(self, small_cluster):
        with pytest.raises(BlockNotFoundError):
            small_cluster.append_records("ghost", [])


class TestDataNetExtend:
    def test_extend_indexes_only_new_blocks(self, growing):
        cluster, dataset, datanet = growing
        n_before = datanet.num_blocks
        cluster.append_records("logs", make_records({"hot": 60}, payload_len=40))
        added = datanet.extend(dataset)
        assert added == dataset.num_blocks - n_before
        assert datanet.num_blocks == dataset.num_blocks

    def test_extend_twice_idempotent(self, growing):
        cluster, dataset, datanet = growing
        cluster.append_records("logs", make_records({"hot": 60}, payload_len=40))
        datanet.extend(dataset)
        assert datanet.extend(dataset) == 0

    def test_estimates_include_appended_data(self, growing):
        cluster, dataset, datanet = growing
        est_before = datanet.estimate_total_size("hot")
        cluster.append_records("logs", make_records({"hot": 80}, payload_len=40))
        datanet.extend(dataset)
        est_after = datanet.estimate_total_size("hot")
        assert est_after > est_before
        truth = dataset.subdataset_total_bytes("hot")
        assert est_after == pytest.approx(truth, rel=0.4)

    def test_scheduling_covers_new_blocks(self, growing):
        cluster, dataset, datanet = growing
        cluster.append_records("logs", make_records({"hot": 60}, payload_len=40))
        datanet.extend(dataset)
        assignment = datanet.schedule("hot", skip_absent=False)
        assert assignment.num_tasks == dataset.num_blocks

    def test_extend_requires_built_instance(self, growing):
        _, dataset, datanet = growing
        manual = DataNet(datanet.elasticmap, dataset.placement())
        with pytest.raises(ConfigError):
            manual.extend(dataset)

    def test_add_block_rejects_duplicates(self, growing):
        _, _, datanet = growing
        first = next(iter(datanet.elasticmap))
        with pytest.raises(MetadataError):
            datanet.elasticmap.add_block(first)

    def test_single_scan_preserved(self, growing):
        """Extend never rescans blocks that already have metadata."""
        cluster, dataset, datanet = growing
        scanned: list = []
        original = dataset.scan_blocks

        cluster.append_records("logs", make_records({"hot": 60}, payload_len=40))
        covered = set(datanet.elasticmap.block_ids)

        def tracking_scan():
            for bid, obs in original():
                def tracked(bid=bid, obs=obs):
                    for item in obs:
                        scanned.append(bid)
                        yield item
                yield bid, tracked()

        dataset.scan_blocks = tracking_scan  # type: ignore[method-assign]
        datanet.extend(dataset)
        assert covered.isdisjoint(scanned)
