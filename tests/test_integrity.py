"""End-to-end integrity machinery: checksums, rot, scrubbing, validation.

Covers the storage half of the integrity subsystem (block checksums, the
per-replica corruption overlay, the scrubber and the verified read path)
and the metadata half (ElasticMap fingerprints and DataNet's
validate-before-schedule pass).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.core.elasticmap import BlockElasticMap
from repro.errors import (
    ConfigError,
    IntegrityError,
    MetadataError,
    StorageError,
)
from repro.hdfs import Block, ReadVerifier, Record, Scrubber
from repro.hdfs.block import CHECKSUM_BYTES
from repro.hdfs.failure import FailureManager
from tests.conftest import make_records


def _cluster(seed=7, num_nodes=8, replication=3):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=replication,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 120, "cold": 60}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    return cluster, dataset


class TestBlockChecksum:
    def test_checksum_length_and_stability(self):
        b = Block(0, capacity_bytes=1000)
        b.try_append(Record("s", 0.0, "abc"))
        digest = b.checksum()
        assert len(digest) == CHECKSUM_BYTES
        assert b.checksum() == digest  # cached, stable

    def test_checksum_depends_on_content(self):
        a, b = Block(0, capacity_bytes=1000), Block(1, capacity_bytes=1000)
        a.try_append(Record("s", 0.0, "abc"))
        b.try_append(Record("s", 0.0, "abd"))
        assert a.checksum() != b.checksum()

    def test_append_invalidates_cache(self):
        b = Block(0, capacity_bytes=1000)
        b.try_append(Record("s", 0.0, "abc"))
        before = b.checksum()
        b.try_append(Record("s", 1.0, "def"))
        assert b.checksum() != before

    def test_same_content_same_checksum(self):
        a, b = Block(0, capacity_bytes=1000), Block(5, capacity_bytes=1000)
        for blk in (a, b):
            blk.try_append(Record("s", 0.0, "abc"))
        assert a.checksum() == b.checksum()
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_fits_64_bits(self):
        b = Block(0, capacity_bytes=1000)
        b.try_append(Record("s", 0.0, "abc"))
        assert 0 <= b.fingerprint < (1 << 64)


class TestCorruptionOverlay:
    def test_corrupt_replica_never_mutates_content(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[0][0]
        before = dataset.block(0).checksum()
        cluster.corrupt_replica("d", node, 0)
        assert dataset.block(0).checksum() == before  # shared block untouched
        assert cluster.datanodes[node].is_replica_corrupt("d", 0)

    def test_corrupt_replica_served_checksum_differs(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[0][0]
        good = cluster.datanodes[node].replica_checksum("d", 0)
        cluster.corrupt_replica("d", node, 0)
        assert cluster.datanodes[node].replica_checksum("d", 0) != good
        assert not cluster.datanodes[node].verify_replica("d", 0)

    def test_other_replicas_stay_healthy(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        cluster.corrupt_replica("d", replicas[0], 0)
        for other in replicas[1:]:
            assert cluster.datanodes[other].verify_replica("d", 0)

    def test_verified_get_raises_on_corrupt(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[0][0]
        cluster.corrupt_replica("d", node, 0)
        with pytest.raises(IntegrityError):
            cluster.datanodes[node].get_replica("d", 0, verify=True)
        # unverified read still serves (legacy path)
        assert cluster.datanodes[node].get_replica("d", 0) is not None

    def test_corrupt_unknown_replica_rejected(self):
        cluster, dataset = _cluster()
        holders = set(dataset.placement()[0])
        outsider = next(n for n in cluster.nodes if n not in holders)
        with pytest.raises(StorageError):
            cluster.datanodes[outsider].corrupt_replica("d", 0)
        with pytest.raises(ConfigError):
            cluster.corrupt_replica("d", 999, 0)

    def test_repair_clears_flag(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[0][0]
        cluster.corrupt_replica("d", node, 0)
        cluster.datanodes[node].repair_replica("d", 0)
        assert cluster.datanodes[node].verify_replica("d", 0)
        assert cluster.datanodes[node].corrupt_replicas("d") == []


class TestScrubber:
    def test_clean_sweep(self):
        cluster, dataset = _cluster()
        report = Scrubber(cluster).scrub("d")
        assert report.clean
        assert report.replicas_scanned == sum(
            len(r) for r in dataset.placement().values()
        )
        assert report.bytes_scanned > 0

    def test_repairs_rotten_replica(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[2][1]
        cluster.corrupt_replica("d", node, 2)
        report = Scrubber(cluster).scrub("d")
        assert report.corrupt_found == 1 and report.repaired == 1
        assert cluster.datanodes[node].verify_replica("d", 2)
        (event,) = report.events
        assert event.destination == node and event.block_id == 2
        assert event.source != node

    def test_strict_raises_when_every_replica_rotten(self):
        cluster, dataset = _cluster()
        for node in dataset.placement()[0]:
            cluster.corrupt_replica("d", node, 0)
        with pytest.raises(IntegrityError):
            Scrubber(cluster).scrub("d")

    def test_lenient_reports_unrepairable(self):
        cluster, dataset = _cluster()
        for node in dataset.placement()[0]:
            cluster.corrupt_replica("d", node, 0)
        report = Scrubber(cluster, strict=False).scrub("d")
        assert ("d", 0) in report.unrepairable
        assert not report.clean

    def test_incremental_step_covers_everything(self):
        cluster, dataset = _cluster()
        node = dataset.placement()[1][0]
        cluster.corrupt_replica("d", node, 1)
        scrubber = Scrubber(cluster)
        total = sum(len(r) for r in dataset.placement().values())
        merged = scrubber.scrub_step("d", max_replicas=3)
        for _ in range(total // 3 + 1):
            merged.merge(scrubber.scrub_step("d", max_replicas=3))
        assert merged.repaired == 1
        assert merged.replicas_scanned >= total

    def test_skips_dead_nodes(self):
        cluster, dataset = _cluster()
        failures = FailureManager(cluster)
        victim = dataset.placement()[0][0]
        failures.fail_node(victim, re_replicate=False)
        report = Scrubber(cluster, failures=failures).scrub("d")
        assert report.clean  # dead replicas are not scanned


class TestFailureManagerVerifiedSource:
    def test_re_replication_prefers_verified_survivor(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        dead, rotten, good = replicas[0], replicas[1], replicas[2]
        cluster.corrupt_replica("d", rotten, 0)
        failures = FailureManager(cluster)
        events = failures.fail_node(dead)
        sources = {e.source for e in events if e.block_id == 0 and e.dataset == "d"}
        assert rotten not in sources
        assert sources <= {good}

    def test_re_replication_refuses_corrupt_only_sources(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        for node in replicas[1:]:
            cluster.corrupt_replica("d", node, 0)
        failures = FailureManager(cluster)
        with pytest.raises(IntegrityError):
            failures.fail_node(replicas[0])


class TestReadVerifier:
    def _costs(self):
        return (lambda n: 1.0, lambda n: 3.0, lambda n: 0.5)

    def test_healthy_local_read(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        verifier = ReadVerifier(cluster)
        rl, rr, wl = self._costs()
        cost = verifier.read_cost("d", 0, replicas[0], replicas, 100, rl, rr, wl)
        assert cost == 1.0 and verifier.detected == 0

    def test_local_rot_repaired_at_remote_cost(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        cluster.corrupt_replica("d", replicas[0], 0)
        verifier = ReadVerifier(cluster)
        rl, rr, wl = self._costs()
        cost = verifier.read_cost("d", 0, replicas[0], replicas, 100, rl, rr, wl)
        assert cost == 3.5  # remote fetch + local rewrite
        assert verifier.detected == 1 and verifier.repaired == 1
        assert cluster.datanodes[replicas[0]].verify_replica("d", 0)

    def test_remote_read_fails_over_past_rot(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        outsider = next(n for n in cluster.nodes if n not in replicas)
        cluster.corrupt_replica("d", replicas[0], 0)
        verifier = ReadVerifier(cluster)
        rl, rr, wl = self._costs()
        cost = verifier.read_cost("d", 0, outsider, replicas, 100, rl, rr, wl)
        assert cost == 3.0
        assert verifier.detected == 1 and verifier.repaired == 0

    def test_no_verified_replica_raises(self):
        cluster, dataset = _cluster()
        replicas = dataset.placement()[0]
        for node in replicas:
            cluster.corrupt_replica("d", node, 0)
        verifier = ReadVerifier(cluster)
        rl, rr, wl = self._costs()
        with pytest.raises(IntegrityError):
            verifier.read_cost("d", 0, replicas[0], replicas, 100, rl, rr, wl)


class TestFingerprintSerialization:
    def _entry(self, fingerprint=None):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        entry = next(iter(datanet.elasticmap))
        if fingerprint is not None:
            return BlockElasticMap(
                entry.block_id,
                entry.hash_map,
                entry.bloom,
                delta=entry.delta,
                memory_model=entry.memory_model,
                fingerprint=fingerprint,
            )
        return entry

    def test_roundtrip_with_fingerprint(self):
        entry = self._entry(fingerprint=0xDEADBEEF)
        clone = BlockElasticMap.from_bytes(entry.to_bytes())
        assert clone.fingerprint == 0xDEADBEEF
        assert clone.hash_map == entry.hash_map

    def test_roundtrip_without_fingerprint(self):
        entry = self._entry()
        entry.fingerprint = None
        clone = BlockElasticMap.from_bytes(entry.to_bytes())
        assert clone.fingerprint is None

    def test_build_stamps_true_fingerprints(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        for entry in datanet.elasticmap:
            assert entry.fingerprint == dataset.block_fingerprint(entry.block_id)

    def test_fingerprint_range_validated(self):
        with pytest.raises(ConfigError):
            self._entry(fingerprint=1 << 64)

    def test_truncated_blob_rejected(self):
        entry = self._entry(fingerprint=1)
        with pytest.raises(MetadataError):
            BlockElasticMap.from_bytes(entry.to_bytes()[:-3])


class TestDataNetValidation:
    def _tamper(self, datanet, dataset, block_id):
        old = datanet.elasticmap.remove_block(block_id)
        datanet.elasticmap.add_block(
            BlockElasticMap(
                block_id,
                {sid: max(1, size // 2) for sid, size in old.hash_map.items()},
                old.bloom,
                delta=old.delta,
                memory_model=old.memory_model,
                fingerprint=dataset.block_fingerprint(block_id) ^ 1,
            )
        )

    def test_clean_dataset_validates_clean(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        report = datanet.validate_integrity(dataset)
        assert report.clean
        assert report.verified == report.checked == dataset.num_blocks

    def test_stale_entry_quarantined_and_rebuilt(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        reference = DataNet.build(dataset, alpha=0.5)
        self._tamper(datanet, dataset, 1)
        report = datanet.validate_integrity(dataset)
        assert report.stale == [1] and report.rebuilt == [1]
        rebuilt = next(e for e in datanet.elasticmap if e.block_id == 1)
        truth = next(e for e in reference.elasticmap if e.block_id == 1)
        assert rebuilt.hash_map == truth.hash_map
        assert rebuilt.to_bytes() == truth.to_bytes()  # bit-for-bit rebuild

    def test_schedule_identical_after_rebuild(self):
        cluster, dataset = _cluster()
        clean = DataNet.build(dataset, alpha=0.5)
        tampered = DataNet.build(dataset, alpha=0.5)
        self._tamper(tampered, dataset, 0)
        assert (
            tampered.schedule("hot").blocks_by_node
            != clean.schedule("hot").blocks_by_node
            or tampered.elasticmap.estimate_total_size("hot")
            != clean.elasticmap.estimate_total_size("hot")
        )  # negative control: staleness is observable before validation
        tampered.validate_integrity(dataset)
        assert (
            tampered.schedule("hot").blocks_by_node
            == clean.schedule("hot").blocks_by_node
        )

    def test_missing_fingerprint_treated_as_stale(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        old = datanet.elasticmap.remove_block(2)
        old.fingerprint = None
        datanet.elasticmap.add_block(old)
        report = datanet.validate_integrity(dataset)
        assert report.unverified == [2] and report.rebuilt == [2]

    def test_requires_built_instance(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        loaded = DataNet(datanet.elasticmap, dataset.placement())
        with pytest.raises(ConfigError):
            loaded.validate_integrity(dataset)

    def test_remove_block_unknown_raises(self):
        cluster, dataset = _cluster()
        datanet = DataNet.build(dataset, alpha=0.5)
        with pytest.raises(MetadataError):
            datanet.elasticmap.remove_block(10_000)
