"""Tests for the distributed ElasticMap metadata store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter
from repro.core.builder import build_elasticmap_array
from repro.core.elasticmap import BlockElasticMap, ElasticMapArray
from repro.core.metastore import DistributedMetaStore, MetaNode, ShardMap
from repro.errors import ConfigError, MetadataError


def _block_map(block_id: int, dominant: dict, tail: list) -> BlockElasticMap:
    bloom = BloomFilter(capacity=max(len(tail), 1), error_rate=0.01, seed=block_id)
    bloom.update(tail)
    return BlockElasticMap(block_id, dominant, bloom)


def _array() -> ElasticMapArray:
    return build_elasticmap_array(
        [
            (0, [("hot", 40_000), ("a", 100), ("b", 120)]),
            (1, [("hot", 35_000), ("c", 90)]),
            (2, [("other", 50_000), ("hot", 200)]),
            (3, [("d", 80)]),
        ],
        alpha=0.4,
    )


class TestBlockSerialization:
    def test_roundtrip(self):
        bm = _block_map(7, {"big": 5000, "mid": 900}, ["t1", "t2", "t3"])
        back = BlockElasticMap.from_bytes(bm.to_bytes())
        assert back.block_id == 7
        assert back.hash_map == bm.hash_map
        assert back.delta == bm.delta
        assert "t1" in back.bloom and "t2" in back.bloom

    def test_rejects_truncated(self):
        bm = _block_map(0, {"x": 10}, [])
        with pytest.raises(MetadataError):
            BlockElasticMap.from_bytes(bm.to_bytes()[:-3])
        with pytest.raises(MetadataError):
            BlockElasticMap.from_bytes(b"short")

    def test_rejects_corrupt_json(self):
        bm = _block_map(0, {"x": 10}, [])
        blob = bytearray(bm.to_bytes())
        blob[33] ^= 0xFF  # flip a byte inside the hash-map payload
        with pytest.raises(MetadataError):
            BlockElasticMap.from_bytes(bytes(blob))

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.integers(1, 10**6), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_hashmap(self, hash_map):
        bm = _block_map(1, hash_map, ["tail-x"])
        back = BlockElasticMap.from_bytes(bm.to_bytes())
        assert back.hash_map == hash_map


class TestMetaNode:
    def test_put_get(self):
        n = MetaNode("m0")
        n.put(1, b"abc")
        assert n.get(1) == b"abc"
        assert n.has(1)
        assert n.stored_blocks == [1]
        assert n.used_bytes() == 3

    def test_missing_block(self):
        with pytest.raises(MetadataError):
            MetaNode("m0").get(9)

    def test_failure_blocks_access(self):
        n = MetaNode("m0")
        n.put(1, b"x")
        n.fail()
        assert not n.alive
        with pytest.raises(MetadataError):
            n.get(1)
        n.recover()
        assert n.get(1) == b"x"

    def test_drop(self):
        n = MetaNode("m0")
        n.put(1, b"x")
        n.drop(1)
        assert not n.has(1)
        n.drop(1)  # idempotent

    def test_validation(self):
        with pytest.raises(ConfigError):
            MetaNode("")


class TestShardMap:
    def test_owner_count(self):
        sm = ShardMap(["a", "b", "c"], replication=2)
        for bid in range(50):
            owners = sm.owners(bid)
            assert len(owners) == 2
            assert len(set(owners)) == 2

    def test_deterministic(self):
        sm = ShardMap(["a", "b", "c"])
        assert sm.owners(5) == sm.owners(5)

    def test_default_replication_is_three(self):
        # regression: the default shipped as 2 for a while, leaving only
        # one surviving copy after a single meta-node failure
        sm = ShardMap(["a", "b", "c", "d"])
        assert sm.replication == 3
        for bid in range(20):
            assert len(sm.owners(bid)) == 3
        store = DistributedMetaStore(num_nodes=4)
        assert store.shard_map.replication == 3

    def test_replication_clamped(self):
        sm = ShardMap(["a"], replication=3)
        assert sm.owners(0) == ["a"]

    def test_spread_over_nodes(self):
        sm = ShardMap([f"n{i}" for i in range(4)], replication=1)
        primaries = {sm.owners(bid)[0] for bid in range(200)}
        assert len(primaries) == 4  # every node is primary for something

    def test_minimal_remapping_on_growth(self):
        """Rendezvous hashing: adding a node moves only ~1/(n+1) of blocks."""
        old = ShardMap([f"n{i}" for i in range(4)], replication=1)
        new = old.with_nodes([f"n{i}" for i in range(5)])
        moved = sum(
            1 for bid in range(400) if old.owners(bid)[0] != new.owners(bid)[0]
        )
        assert moved < 0.4 * 400  # ~20% expected, generous bound

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardMap([])
        with pytest.raises(ConfigError):
            ShardMap(["a", "a"])
        with pytest.raises(ConfigError):
            ShardMap(["a"], replication=0)


class TestDistributedMetaStore:
    def test_load_and_query_matches_local_array(self):
        array = _array()
        store = DistributedMetaStore(num_nodes=3, replication=2)
        store.load_array(array)
        assert store.block_ids == array.block_ids
        assert store.estimate_total_size("hot") == array.estimate_total_size("hot")
        assert store.block_weights("hot") == array.block_weights("hot")
        assert store.distribution("other") == array.distribution("other")

    def test_data_spread_across_nodes(self):
        store = DistributedMetaStore(num_nodes=3, replication=1)
        store.load_array(_array())
        usage = store.storage_by_node()
        assert sum(1 for v in usage.values() if v > 0) >= 2

    def test_failover_on_node_failure(self):
        array = _array()
        store = DistributedMetaStore(num_nodes=3, replication=2)
        store.load_array(array)
        store.fail_node("meta-0")
        # all queries still answer identically via replicas
        assert store.estimate_total_size("hot") == array.estimate_total_size("hot")

    def test_all_replicas_down_raises(self):
        store = DistributedMetaStore(num_nodes=2, replication=2)
        store.load_array(_array())
        store.fail_node("meta-0")
        store.fail_node("meta-1")
        with pytest.raises(MetadataError):
            store.get_block(0)

    def test_recover_resyncs(self):
        array = _array()
        store = DistributedMetaStore(num_nodes=2, replication=2)
        store.fail_node("meta-0")
        store.load_array(array)  # written only to meta-1
        store.recover_node("meta-0")
        store.fail_node("meta-1")
        # meta-0 must now hold everything it owns
        assert store.estimate_total_size("hot") == array.estimate_total_size("hot")

    def test_unknown_block(self):
        store = DistributedMetaStore(num_nodes=2)
        with pytest.raises(MetadataError):
            store.get_block(123)

    def test_write_with_all_owners_down_raises(self):
        store = DistributedMetaStore(num_nodes=1, replication=1)
        store.fail_node("meta-0")
        with pytest.raises(MetadataError):
            store.put_block(_block_map(0, {"x": 5}, []))

    def test_unknown_node_operations(self):
        store = DistributedMetaStore(num_nodes=1)
        with pytest.raises(ConfigError):
            store.fail_node("nope")
        with pytest.raises(ConfigError):
            store.recover_node("nope")

    def test_validation(self):
        with pytest.raises(ConfigError):
            DistributedMetaStore(num_nodes=0)


class TestAddNode:
    def test_queries_unchanged_after_growth(self):
        array = _array()
        store = DistributedMetaStore(num_nodes=2, replication=1)
        store.load_array(array)
        before = {sid: store.estimate_total_size(sid) for sid in ("hot", "other")}
        new_id = store.add_node()
        assert new_id in store.nodes
        after = {sid: store.estimate_total_size(sid) for sid in ("hot", "other")}
        assert before == after

    def test_new_node_receives_some_blocks_eventually(self):
        store = DistributedMetaStore(num_nodes=2, replication=1)
        # many blocks so the new node statistically owns a few
        blocks = [(i, [(f"s{i}", 1000 + i)]) for i in range(40)]
        store.load_array(build_elasticmap_array(blocks, alpha=1.0))
        new_id = store.add_node()
        assert store.nodes[new_id].used_bytes() > 0

    def test_dropped_blobs_leave_old_nodes(self):
        store = DistributedMetaStore(num_nodes=2, replication=1)
        blocks = [(i, [(f"s{i}", 1000 + i)]) for i in range(40)]
        store.load_array(build_elasticmap_array(blocks, alpha=1.0))
        store.add_node()
        # with replication 1, every block lives on exactly one node
        total_copies = sum(
            1
            for node in store.nodes.values()
            for _bid in node.stored_blocks
        )
        assert total_copies == 40

    def test_explicit_name_and_duplicates(self):
        store = DistributedMetaStore(num_nodes=1, replication=1)
        store.add_node("meta-extra")
        with pytest.raises(ConfigError):
            store.add_node("meta-extra")

    def test_auto_names_never_collide(self):
        store = DistributedMetaStore(num_nodes=2)
        a = store.add_node()
        b = store.add_node()
        assert a != b and len(store.nodes) == 4
