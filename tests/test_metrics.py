"""Tests for balance metrics and report formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.metrics import (
    BalanceSummary,
    coefficient_of_variation,
    format_kv,
    format_table,
    imbalance_ratio,
    improvement,
    min_max_ratio,
    series_to_rows,
    speedup,
    summarize,
)


class TestBalanceMetrics:
    def test_imbalance_ratio(self):
        assert imbalance_ratio([10, 10, 10]) == 1.0
        assert imbalance_ratio([30, 10, 20]) == pytest.approx(1.5)

    def test_imbalance_all_zero(self):
        assert imbalance_ratio([0, 0]) == 1.0

    def test_min_max_ratio(self):
        assert min_max_ratio([5, 10]) == 0.5
        assert min_max_ratio([0, 0]) == 1.0

    def test_cv(self):
        assert coefficient_of_variation([10, 10]) == 0.0
        assert coefficient_of_variation([0, 20]) == pytest.approx(1.0)

    def test_improvement(self):
        assert improvement(100, 58) == pytest.approx(0.42)
        assert improvement(10, 12) == pytest.approx(-0.2)
        with pytest.raises(ConfigError):
            improvement(0, 5)

    def test_speedup(self):
        assert speedup(50, 10) == 5.0
        with pytest.raises(ConfigError):
            speedup(10, 0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            imbalance_ratio([])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert (s.minimum, s.mean, s.maximum) == (1.0, 2.0, 3.0)
        assert s.std == pytest.approx(0.8165, abs=1e-3)
        assert s.imbalance == 1.5

    def test_summary_normalized(self):
        s = summarize([2.0, 4.0]).normalized(4.0)
        assert s.maximum == 1.0 and s.minimum == 0.5
        with pytest.raises(ConfigError):
            s.normalized(0)

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    def test_property_summary_orders(self, values):
        s = summarize(values)
        eps = 1e-9 * max(values)  # mean can drift an ulp past max/min
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.std >= 0

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    def test_property_imbalance_at_least_one(self, values):
        assert imbalance_ratio(values) >= 1.0 - 1e-9


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_width_mismatch(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [[1]])

    def test_format_table_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_format_kv(self):
        out = format_kv({"alpha": 0.3, "nodes": 32})
        assert "alpha" in out and ": 32" in out.replace("  ", " ")

    def test_format_kv_empty(self):
        with pytest.raises(ConfigError):
            format_kv({})

    def test_series_to_rows(self):
        headers, rows = series_to_rows({1: "a", 2: "b"}, "k", "v")
        assert headers == ["k", "v"]
        assert rows == [[1, "a"], [2, "b"]]

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0]])
        assert "1,234,567" in out


class TestRecoverySummary:
    def _summary(self, **kw):
        from repro.metrics import RecoverySummary

        return RecoverySummary(attempts_histogram={1: 3, 2: 1}, **kw)

    def test_integrity_fields_default_to_zero(self):
        s = self._summary()
        assert s.scrub_bytes == 0
        assert s.repaired_replicas == 0
        assert s.rebuilt_blocks == 0
        assert s.driver_restarts == 0
        assert s.resume_wasted_seconds == 0.0

    def test_integrity_fields_formatted(self):
        s = self._summary(
            scrub_bytes=4096,
            repaired_replicas=2,
            rebuilt_blocks=1,
            driver_restarts=3,
            resume_wasted_seconds=1.5,
        )
        out = s.format()
        assert "scrubbed bytes" in out
        assert "repaired replicas" in out
        assert "rebuilt metadata blocks" in out
        assert "driver restarts" in out
        assert "resume wasted work (s)" in out

    def test_negative_integrity_fields_rejected(self):
        for field in (
            "scrub_bytes",
            "repaired_replicas",
            "rebuilt_blocks",
            "driver_restarts",
            "resume_wasted_seconds",
        ):
            with pytest.raises(ConfigError):
                self._summary(**{field: -1})


class TestIntegritySummary:
    def test_clean_default(self):
        from repro.metrics import IntegritySummary

        assert IntegritySummary().clean
        assert not IntegritySummary(scrubbed_replicas=5).clean

    def test_fully_repaired(self):
        from repro.metrics import IntegritySummary

        good = IntegritySummary(corruptions_injected=2, corruptions_repaired=2)
        bad = IntegritySummary(corruptions_injected=2, corruptions_repaired=1)
        stale = IntegritySummary(stale_entries=1, rebuilt_blocks=0)
        assert good.fully_repaired
        assert not bad.fully_repaired
        assert not stale.fully_repaired

    def test_negative_rejected(self):
        from repro.metrics import IntegritySummary

        with pytest.raises(ConfigError):
            IntegritySummary(corruptions_injected=-1)

    def test_format(self):
        from repro.metrics import IntegritySummary

        out = IntegritySummary(corruptions_injected=1, stale_entries=2).format()
        assert "Integrity summary" in out
        assert "corruptions injected" in out
        assert "stale metadata entries" in out
