"""Unit tests for the observability subsystem: tracer, metrics registry,
exporters, and profiling hooks."""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.errors import ConfigError
from repro.metrics.reporting import format_histogram
from repro.obs import (
    NULL_OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    Tracer,
    exponential_buckets,
)
from repro.obs.export import (
    snapshot_text,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profiler import profile_block, profiled


class FakeClock:
    """Deterministic wall clock for tracer tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestTracer:
    def test_nesting_builds_parent_child_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", category="phase") as outer:
            with tracer.span("inner", category="task") as inner:
                assert tracer.active is inner
            assert tracer.active is outer
        assert tracer.active is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children_of(outer) == [inner]
        assert tracer.roots() == [outer]

    def test_record_defaults_to_open_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("loop") as loop:
            done = tracer.record("task-1", sim_start=0.0, sim_end=2.5)
        assert done.parent_id == loop.span_id
        assert done.wall_end is not None
        assert done.sim_duration == 2.5

    def test_record_explicit_parent_and_forced_root(self):
        tracer = Tracer(clock=FakeClock())
        parent = tracer.record("parent")
        child = tracer.record("child", parent=parent.span_id)
        root = tracer.record("root", parent=0)
        assert child.parent_id == parent.span_id
        assert root.parent_id is None

    def test_empty_name_rejected(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ConfigError):
            tracer.record("")

    def test_span_attrs_and_sim_mutation(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", category="wave", node=3) as span:
            span.set(blocks=7).sim(1.0, 4.0)
        assert span.attrs == {"node": 3, "blocks": 7}
        assert span.sim_duration == 3.0
        assert span.wall_duration > 0

    def test_mark_discard_rolls_back_speculative_spans(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("keep")
        mark = tracer.mark()
        tracer.record("doomed-1")
        tracer.record("doomed-2")
        assert tracer.discard_from(mark) == 2
        assert [s.name for s in tracer.spans] == ["keep"]

    def test_discard_refuses_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        mark = tracer.mark()
        cm = tracer.span("open")
        cm.__enter__()
        with pytest.raises(ConfigError):
            tracer.discard_from(mark)
        cm.__exit__(None, None, None)

    def test_find_and_counts_by_category(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("sel/a", category="task")
        tracer.record("sel/b", category="task")
        tracer.record("wave-0", category="wave")
        assert len(tracer.find(category="task")) == 2
        assert len(tracer.find(name_prefix="sel/")) == 2
        assert tracer.counts_by_category() == {"task": 2, "wave": 1}

    def test_walk_is_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root"):
            with tracer.span("mid"):
                tracer.record("leaf")
        depths = {name: depth for depth, s in tracer.walk() for name in [s.name]}
        assert depths == {"root": 0, "mid": 1, "leaf": 2}

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("x") as span:
            span.set(a=1).sim(0.0, 1.0)
        assert tracer.record("y") is span or tracer.record("y").span_id == 0
        assert tracer.spans == []
        assert tracer.discard_from(tracer.mark()) == 0


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total == 3.5
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        c = Counter("bytes", labelnames=("node",))
        c.inc(10, node="0")
        c.inc(5, node="1")
        assert c.value(node="0") == 10
        assert c.total == 15
        assert c.series() == {("0",): 10.0, ("1",): 5.0}

    def test_label_mismatch_rejected(self):
        c = Counter("x", labelnames=("node",))
        with pytest.raises(ConfigError):
            c.inc(1)
        with pytest.raises(ConfigError):
            c.inc(1, other="y")

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(105.0)
        assert h.bucket_counts() == {1.0: 1, 2.0: 1, 4.0: 1, math.inf: 1}

    def test_histogram_invalid_buckets(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(1.0, math.inf))

    def test_exponential_buckets_validation(self):
        assert exponential_buckets(1, 2, 3) == (1.0, 2.0, 4.0)
        with pytest.raises(ConfigError):
            exponential_buckets(0, 2, 3)
        with pytest.raises(ConfigError):
            exponential_buckets(1, 1.0, 3)
        with pytest.raises(ConfigError):
            exponential_buckets(1, 2, 0)

    def test_int_counts_round_trips_through_format_histogram(self):
        # Satellite: a histogram rendered by the existing reporting helper
        # shows exactly the buckets the histogram recorded.
        h = Histogram.fixed("attempts", buckets=(1, 2, 3, 4))
        for v in (1, 1, 1, 2, 4):
            h.observe(v)
        counts = h.int_counts()
        assert counts == {1: 3, 2: 1, 4: 1}
        text = format_histogram(counts, key_name="attempts", width=8)
        lines = text.splitlines()
        assert lines[0].split() == ["attempts", "count", "bar"]
        rendered = {
            int(line.split()[0]): int(line.split()[1]) for line in lines[2:]
        }
        assert rendered == counts

    def test_int_counts_rejects_fractional_bounds_and_overflow(self):
        frac = Histogram("f", buckets=(0.5, 1.5))
        frac.observe(0.4)
        with pytest.raises(ConfigError):
            frac.int_counts()
        over = Histogram("o", buckets=(1, 2))
        over.observe(99)
        with pytest.raises(ConfigError):
            over.int_counts()

    def test_registry_get_or_create_and_type_mismatch(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", help="h")
        c2 = reg.counter("hits")
        assert c1 is c2
        assert "hits" in reg and len(reg) == 1
        with pytest.raises(ConfigError):
            reg.gauge("hits")
        with pytest.raises(ConfigError):
            reg.get("missing")

    def test_registry_snapshot_and_format(self):
        reg = MetricsRegistry()
        reg.counter("a", labelnames=("n",)).inc(2, n="0")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a"]["type"] == "counter"
        assert snap["a"]["series"][0] == {"labels": {"n": "0"}, "value": 2.0}
        assert snap["h"]["series"][0]["count"] == 1
        text = reg.format()
        assert "metrics snapshot" in text and "a" in text

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("x").inc(5)
        reg.gauge("y").set(3)
        reg.histogram("z").observe(1.0)
        assert len(reg) == 0
        assert reg.counter("x").value() == 0.0


class TestObservability:
    def test_null_default_is_disabled(self):
        assert not NULL_OBS.enabled
        assert isinstance(NULL_OBS.tracer, NullTracer)
        assert isinstance(NULL_OBS.metrics, NullRegistry)

    def test_create_is_live(self):
        obs = Observability.create()
        assert obs.enabled
        assert obs.tracer.enabled and obs.metrics.enabled


class TestExporters:
    def _traced(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run", category="phase", sim_start=0.0) as run:
            tracer.record(
                "t1", category="task", sim_start=0.0, sim_end=1.0,
                track="node 0",
            )
            tracer.record(
                "t2", category="task", sim_start=1.0, sim_end=2.0,
                track="node 1",
            )
            run.sim(0.0, 2.0)
        return tracer

    def test_chrome_trace_is_valid_and_tracked(self):
        trace = to_chrome_trace(self._traced())
        checked = validate_chrome_trace(trace)
        assert checked == 6  # 3 spans x B/E
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names == {"main", "node 0", "node 1"}

    def test_chrome_trace_refuses_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        cm = tracer.span("open")
        cm.__enter__()
        with pytest.raises(ConfigError):
            to_chrome_trace(tracer)
        cm.__exit__(None, None, None)

    def test_chrome_trace_merges_timeline(self):
        from repro.sim.tasks import SimTask, TaskTimeline

        timeline = TaskTimeline(intervals={"a": (0.0, 1.0)})
        timeline.tasks["a"] = SimTask(
            task_id="a", job="j", kind="map", node=0, duration=1.0
        )
        trace = to_chrome_trace(None, timeline=timeline)
        validate_chrome_trace(trace)
        begins = [e for e in trace["traceEvents"] if e["ph"] == "B"]
        assert [e["name"] for e in begins] == ["a"]
        assert begins[0]["cat"] == "map"

    def test_write_chrome_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), self._traced())
        assert written == path.stat().st_size
        assert validate_chrome_trace_file(str(path)) == 6

    def test_validate_rejects_malformed(self, tmp_path):
        with pytest.raises(ConfigError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ConfigError):
            validate_chrome_trace({"traceEvents": [{"ph": "B"}]})
        unbalanced = {
            "traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
            ]
        }
        with pytest.raises(ConfigError):
            validate_chrome_trace(unbalanced)
        backwards = {
            "traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 5},
                {"name": "x", "ph": "E", "pid": 1, "tid": 1, "ts": 1},
            ]
        }
        with pytest.raises(ConfigError):
            validate_chrome_trace(backwards)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            validate_chrome_trace_file(str(bad))

    def test_jsonl_emits_spans_then_metrics(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        buf = io.StringIO()
        rows = write_jsonl(buf, tracer=self._traced(), metrics=reg)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert rows == len(lines) == 4
        assert [row["type"] for row in lines] == [
            "span", "span", "span", "metric",
        ]
        assert lines[-1]["name"] == "hits"

    def test_snapshot_text(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        text = snapshot_text(tracer=self._traced(), metrics=reg)
        assert "spans" in text and "metrics snapshot" in text
        assert snapshot_text() == "(no observability data)"


class TestProfiler:
    def test_profile_block_records_span_and_histogram(self):
        obs = Observability.create()
        with profile_block(obs, "unit.work", node=1):
            pass
        spans = obs.tracer.find(category="profile")
        assert len(spans) == 1 and spans[0].name == "unit.work"
        hist = obs.metrics.get("profile_seconds")
        assert hist.count(site="unit.work") == 1

    def test_profile_block_noop_when_disabled(self):
        with profile_block(NULL_OBS, "unit.work"):
            pass
        assert NULL_OBS.tracer.spans == []

    def test_profiled_decorator(self):
        obs = Observability.create()

        @profiled(obs, site="step")
        def step() -> int:
            return 41

        assert step() == 41
        assert obs.metrics.get("profile_seconds").count(site="step") == 1
        spans = obs.tracer.find(category="profile")
        assert [s.name for s in spans] == ["step"]
