"""Integration tests for observability threaded through the pipeline.

Covers the tentpole's hard guarantees:

* **Byte-identity off** — with the default ``NULL_OBS``, every
  instrumented component produces output identical to a traced run;
  tracing observes, it never perturbs.
* **Span-count identity on** — a traced chaos run emits one
  ``attempt``-category span per attempt-ledger record (the histogram's
  ground truth), plus ``wave`` and ``scrub`` spans for every round/sweep.
* **Schema** — the emitted Chrome trace validates (B/E pairing,
  monotonic timestamps).
* **Retry nesting** — each retried task's span tree shows one child per
  attempt with the backoff gap visible between them (the satellite test).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.faults import (
    ChaosRunner,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    RetryPolicy,
    TransientFaults,
)
from repro.faults.plan import BitRot
from repro.mapreduce.apps.word_count import word_count_job
from repro.mapreduce.engine import MapReduceEngine
from repro.obs import NULL_OBS, Observability
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.sim.simulator import DiscreteEventSimulator
from repro.sim.tasks import SimTask
from tests.conftest import make_records


def _fresh(num_nodes=8, seed=11):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 150, "cold": 50}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    return cluster, dataset


def _chaos_report(plan, obs):
    cluster, dataset = _fresh()
    runner = ChaosRunner(cluster, plan, retry=RetryPolicy(), obs=obs)
    return runner.run(dataset, "hot", word_count_job())


FLAKY_PLAN = FaultPlan(
    seed=3,
    crashes=(NodeCrash(2, time=0.5),),
    transient=TransientFaults(0.15),
    bit_rots=(BitRot(node=0, block=0),),
)


class TestByteIdentityWhenDisabled:
    """obs on vs off must not change a single simulated number."""

    def test_engine_job_identical(self):
        results = []
        for obs in (NULL_OBS, Observability.create()):
            cluster, dataset = _fresh()
            datanet = DataNet.build(dataset, alpha=0.3, obs=obs)
            engine = MapReduceEngine(cluster, obs=obs)
            results.append(
                engine.run_job(
                    dataset, "hot", word_count_job(), datanet.schedule("hot")
                )
            )
        off, on = results
        assert off == on
        assert repr(off) == repr(on)

    def test_simulator_identical(self):
        def run(obs):
            tasks = [
                SimTask(task_id=f"t{i}", node=i % 2, duration=1.0 + i, kind="map")
                for i in range(6)
            ]
            sim = DiscreteEventSimulator(slots_per_node=2)
            return sim.run(tasks, obs=obs)

        off, on = run(NULL_OBS), run(Observability.create())
        assert off.timeline.intervals == on.timeline.intervals
        assert off.timeline.makespan == on.timeline.makespan
        assert off.events_processed == on.events_processed

    def test_chaos_run_identical(self):
        off = _chaos_report(FLAKY_PLAN, NULL_OBS)
        on = _chaos_report(FLAKY_PLAN, Observability.create())
        assert off.job == on.job
        assert off.attempts_histogram == on.attempts_histogram
        assert off.wasted_seconds == on.wasted_seconds
        assert off.rescheduled_blocks == on.rescheduled_blocks

    def test_null_obs_leaves_no_spans_or_metrics(self):
        _chaos_report(FLAKY_PLAN, NULL_OBS)
        assert NULL_OBS.tracer.spans == []
        assert len(NULL_OBS.metrics) == 0


class TestSpanAccounting:
    """Acceptance: span counts equal attempts + waves + scrub sweeps."""

    def _traced_run(self, plan=FLAKY_PLAN):
        obs = Observability.create()
        report = _chaos_report(plan, obs)
        return report, obs

    def test_attempt_spans_match_attempt_ledger(self):
        report, obs = self._traced_run()
        total_attempts = sum(
            attempts * tasks
            for attempts, tasks in report.attempts_histogram.items()
        )
        attempt_spans = obs.tracer.find(category="attempt")
        assert len(attempt_spans) == total_attempts

    def test_wave_and_scrub_spans_present(self):
        report, obs = self._traced_run()
        waves = obs.tracer.find(category="wave")
        scrubs = obs.tracer.find(category="scrub")
        assert waves, "crash recovery must emit recovery-round wave spans"
        assert len(scrubs) == 1  # the end-of-run sweep
        assert scrubs[0].attrs["replicas"] > 0

    def test_root_span_covers_the_run(self):
        _report, obs = self._traced_run()
        roots = obs.tracer.find(category="run")
        assert len(roots) == 1 and roots[0].name == "chaos/run"
        assert obs.tracer.active is None

    def test_fault_metrics_recorded(self):
        report, obs = self._traced_run()
        m = obs.metrics
        total_attempts = sum(
            a * t for a, t in report.attempts_histogram.items()
        )
        # counters are monotone: speculative attempts rolled back out of
        # the ledger (crash straddles) stay counted, so >= not ==
        assert m.get("fault_attempts_total").total >= total_attempts
        assert m.get("node_crashes_total").total == len(report.dead_nodes)
        assert (
            m.get("rescheduled_blocks_total").total
            == len(report.rescheduled_blocks)
        )

    def test_chrome_trace_from_chaos_run_validates(self):
        _report, obs = self._traced_run()
        trace = to_chrome_trace(obs.tracer)
        checked = validate_chrome_trace(trace)
        assert checked == 2 * len(obs.tracer.spans)


class TestRetryNesting:
    """Satellite: the span tree shows one child per attempt with backoff gaps."""

    def test_one_attempt_child_per_try_with_backoff_gaps(self):
        obs = Observability.create()
        plan = FaultPlan(seed=5, transient=TransientFaults(0.4))
        _chaos_report(plan, obs)

        retried = [
            span
            for span in obs.tracer.find(category="task")
            if len(obs.tracer.children_of(span)) > 1
        ]
        assert retried, "transient p=0.4 must retry at least one task"
        for parent in retried:
            children = obs.tracer.children_of(parent)
            assert all(c.category == "attempt" for c in children)
            assert int(parent.attrs["attempts"]) == len(children)
            # every attempt but the last failed; the next one starts after
            # a strictly positive backoff gap
            for earlier, later in zip(children, children[1:]):
                assert earlier.attrs["outcome"] == "fault"
                assert later.sim_start > earlier.sim_end
            assert children[-1].attrs["outcome"] == "ok"
            # attempt numbering is embedded in the span names
            assert [c.name.rsplit("#a", 1)[1] for c in children] == [
                str(i + 1) for i in range(len(children))
            ]

    def test_run_attempts_direct_nesting(self):
        from repro.faults.retry import AttemptLog, NodeBlacklist, run_attempts

        obs = Observability.create()
        plan = FaultPlan(seed=9, transient=TransientFaults(0.5))
        injector = FaultInjector(plan)
        log = AttemptLog()
        policy = RetryPolicy(max_attempts=6)
        blacklist = NodeBlacklist(policy.blacklist_after)
        for i in range(8):
            run_attempts(
                1.0, 0, f"task-{i}", injector, policy, log, blacklist, obs=obs
            )
        assert len(obs.tracer.find(category="attempt")) == len(log.records)


class TestExportedArtifacts:
    def test_jsonl_and_snapshot_from_real_run(self, tmp_path):
        import json

        from repro.obs.export import snapshot_text, write_jsonl

        _report, obs = TestSpanAccounting()._traced_run()
        path = tmp_path / "events.jsonl"
        rows = write_jsonl(str(path), tracer=obs.tracer, metrics=obs.metrics)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == rows
        kinds = {json.loads(line)["type"] for line in lines}
        assert kinds == {"span", "metric"}
        text = snapshot_text(tracer=obs.tracer, metrics=obs.metrics)
        assert "spans[attempt]" in text
        assert "metrics snapshot" in text
