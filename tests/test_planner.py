"""Tests for capacity planning and the speculative simulator."""

from __future__ import annotations

import pytest

from repro.core.elasticmap import MemoryModel
from repro.errors import ConfigError
from repro.sim import SimTask
from repro.sim.speculation import SpeculativeSimulator
from repro.theory import WorkloadModel
from repro.theory.planner import (
    max_cluster_for_imbalance,
    metadata_budget,
    plan,
    recommend_alpha,
)


class TestMaxCluster:
    def test_monotone_in_tolerance(self):
        model = WorkloadModel()
        strict = max_cluster_for_imbalance(model, expected_overloaded_nodes=0.5)
        loose = max_cluster_for_imbalance(model, expected_overloaded_nodes=4.0)
        assert strict <= loose

    def test_boundary_is_tight(self):
        model = WorkloadModel()
        m = max_cluster_for_imbalance(model, expected_overloaded_nodes=1.0)
        assert model.expected_nodes_above(m, 2.0) <= 1.0
        assert model.expected_nodes_above(m + 1, 2.0) > 1.0

    def test_paper_regime(self):
        """At the paper's parameters, 128 nodes expect ~4 overloaded nodes —
        well past the 1-node tolerance boundary."""
        model = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
        m = max_cluster_for_imbalance(model, expected_overloaded_nodes=1.0)
        assert m < 128

    def test_caps_at_max_nodes(self):
        model = WorkloadModel(k=50.0, theta=1.0, num_blocks=100_000)
        assert (
            max_cluster_for_imbalance(model, max_nodes=256) == 256
        )  # huge shape: never imbalanced in range

    def test_validation(self):
        model = WorkloadModel()
        with pytest.raises(ConfigError):
            max_cluster_for_imbalance(model, overload_factor=1.0)
        with pytest.raises(ConfigError):
            max_cluster_for_imbalance(model, expected_overloaded_nodes=0)


class TestMetadataBudget:
    def test_matches_eq5(self):
        model = MemoryModel()
        got = metadata_budget(10, 100, 0.3, memory_model=model)
        assert got == pytest.approx(10 * model.cost_bits(100, 0.3) / 8.0)

    def test_monotone_in_alpha(self):
        costs = [metadata_budget(10, 100, a / 10) for a in range(11)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            metadata_budget(0, 10, 0.3)


class TestRecommendAlpha:
    def test_generous_budget_gives_full_alpha(self):
        alpha = recommend_alpha(10, 100, 10**9)
        assert alpha == pytest.approx(1.0, abs=0.01)

    def test_tight_budget_near_floor(self):
        model = MemoryModel()
        floor_cost = metadata_budget(10, 100, 0.15, memory_model=model)
        alpha = recommend_alpha(10, 100, floor_cost * 1.05, memory_model=model)
        assert 0.15 <= alpha < 0.3

    def test_result_fits_budget(self):
        budget = 5000.0
        alpha = recommend_alpha(10, 100, budget)
        assert metadata_budget(10, 100, alpha) <= budget * 1.01

    def test_impossible_budget_raises(self):
        with pytest.raises(ConfigError):
            recommend_alpha(1000, 1000, 10.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            recommend_alpha(10, 100, 0.0)
        with pytest.raises(ConfigError):
            recommend_alpha(10, 100, 100.0, balance_floor=2.0)


class TestPlan:
    def test_full_report(self):
        report = plan(
            num_blocks=256,
            subdatasets_per_block=2000,
            target_nodes=128,
            metadata_budget_bytes=10**7,
        )
        assert 0.15 <= report.recommended_alpha <= 1.0
        assert report.metadata_bytes <= 10**7 * 1.01
        assert report.stock_safe_cluster >= 1
        assert report.expected_overloaded_at_target > 0
        assert "Capacity plan" in report.format()

    def test_validation(self):
        with pytest.raises(ConfigError):
            plan(
                num_blocks=10,
                subdatasets_per_block=10,
                target_nodes=0,
                metadata_budget_bytes=1000.0,
            )


def _task(tid, node=0, dur=1.0, deps=(), kind="map"):
    return SimTask(
        task_id=tid, node=node, duration=dur, deps=frozenset(deps), kind=kind
    )


class TestSpeculativeSimulator:
    def test_no_stragglers_passthrough(self):
        sim = SpeculativeSimulator()
        run = sim.run([_task(f"t{i}", node=i, dur=10.0) for i in range(4)])
        assert run.backups == {}
        assert run.makespan == 10.0
        assert run.wasted_seconds == 0.0

    def test_straggler_gets_backup(self):
        tasks = [_task(f"t{i}", node=i, dur=10.0) for i in range(4)]
        tasks.append(_task("slow", node=4, dur=40.0))
        run = SpeculativeSimulator(relocation_speedup=2.0).run(tasks)
        assert "slow" in run.backups
        assert run.effective_end["slow"] < 40.0
        assert run.wasted_seconds > 0.0

    def test_backup_on_other_node(self):
        tasks = [_task(f"t{i}", node=i, dur=10.0) for i in range(4)]
        tasks.append(_task("slow", node=4, dur=40.0))
        run = SpeculativeSimulator(relocation_speedup=2.0).run(tasks)
        backup = run.timeline.tasks[run.backups["slow"]]
        assert backup.node != 4

    def test_weak_relocation_barely_helps(self):
        """The DataNet argument, dynamically: a data-heavy straggler keeps
        nearly its full duration even with a backup."""
        tasks = [_task(f"t{i}", node=i, dur=10.0) for i in range(4)]
        tasks.append(_task("slow", node=4, dur=40.0))
        run = SpeculativeSimulator(relocation_speedup=1.2).run(tasks)
        assert run.makespan > 30.0

    def test_only_configured_kinds_speculated(self):
        tasks = [
            _task(f"t{i}", node=i, dur=10.0, kind="selection") for i in range(4)
        ]
        tasks.append(_task("slow", node=4, dur=40.0, kind="selection"))
        run = SpeculativeSimulator().run(tasks)
        assert run.backups == {}

    def test_dependencies_respected_by_backups(self):
        tasks = [
            _task("pre", node=0, dur=5.0, kind="selection"),
            _task("m0", node=0, dur=10.0, deps={"pre"}),
            _task("m1", node=1, dur=10.0, deps={"pre"}),
            _task("m2", node=2, dur=10.0, deps={"pre"}),
            _task("slow", node=3, dur=50.0, deps={"pre"}),
        ]
        run = SpeculativeSimulator(relocation_speedup=3.0).run(tasks)
        backup_id = run.backups["slow"]
        assert run.timeline.start_of(backup_id) >= run.timeline.end_of("pre")

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpeculativeSimulator(slowdown_threshold=1.0)
        with pytest.raises(ConfigError):
            SpeculativeSimulator(relocation_speedup=0.5)
        with pytest.raises(ConfigError):
            SpeculativeSimulator(speculate_kinds=())
