"""Tests for the background placement rebalancer (repro.rebalance).

Covers the cost model (Algorithm 1 alignment), the seed-deterministic
annealing planner, the crash-safe executor, and the single-mutation-path
regression: every replica move — balancer or rebalancer — must refresh
the DataNet's cached bipartite graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster, Record
from repro.coding import CodingSpec
from repro.core.scheduler import DistributionAwareScheduler
from repro.errors import ConfigError
from repro.hdfs import BlockBalancer
from repro.rebalance import (
    CostEvaluator,
    ExecutionReport,
    Move,
    PlacementCostModel,
    RebalanceExecutor,
    RebalancePlanner,
    WorkloadProfile,
    check_plan_invariants,
    layout_digest,
)
from repro.serve.journal import MetadataJournal
from tests.conftest import make_records


def _environment(seed=11, *, num_nodes=8, coding=None):
    cluster = HDFSCluster(
        num_nodes=num_nodes,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
        coding=coding,
    )
    recs = make_records({"hot": 200, "warm": 100, "cold": 60}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    datanet = DataNet.build(dataset, alpha=0.3)
    return cluster, dataset, datanet


def _profile(dataset, *, boost="hot"):
    sizes = dataset.subdataset_sizes()
    weights = {sid: float(sizes[sid]) for sid in sizes}
    weights[boost] = 4.0 * max(weights.values())
    return WorkloadProfile(weights)


def _plan(dataset, datanet, profile, **kwargs):
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("iterations", 1500)
    return RebalancePlanner(dataset, datanet, profile, **kwargs).plan()


# -- workload profile --------------------------------------------------------------


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadProfile({})
        with pytest.raises(ConfigError):
            WorkloadProfile({"s": 0.0})
        with pytest.raises(ConfigError):
            WorkloadProfile({"s": -1.0})
        with pytest.raises(ConfigError):
            WorkloadProfile({"s": float("inf")})

    def test_sorted_iteration_and_membership(self):
        p = WorkloadProfile({"b": 2.0, "a": 1.0, "c": 3.0})
        assert [sid for sid, _ in p.items()] == ["a", "b", "c"]
        assert "b" in p and "z" not in p
        assert len(p) == 3

    def test_uniform(self):
        p = WorkloadProfile.uniform(["x", "y"])
        assert dict(p.items()) == {"x": 1.0, "y": 1.0}


# -- cost model --------------------------------------------------------------------


class TestCostModel:
    def test_cost_is_algorithm1_max_workload(self):
        """The objective IS the real scheduler's makespan — not a proxy."""
        _cluster, dataset, datanet = _environment()
        profile = WorkloadProfile.uniform(["hot"])
        model = PlacementCostModel(datanet, profile)
        cost = model.cost(dataset.placement())
        direct = DistributionAwareScheduler().schedule(
            datanet.bipartite_graph("hot")
        )
        assert cost == pytest.approx(float(direct.max_workload))

    def test_delta_matches_full_recompute(self):
        _cluster, dataset, datanet = _environment()
        model = PlacementCostModel(datanet, _profile(dataset))
        placement = dataset.placement()
        ev = model.evaluator(placement)
        bid = model.candidate_blocks()[0]
        src = placement[bid][0]
        dst = next(
            n for n in datanet.nodes if n not in placement[bid]
        )
        predicted = ev.delta(bid, src, dst)
        before = ev.cost
        ev.apply(bid, src, dst)
        assert ev.cost - before == pytest.approx(predicted)

    def test_unknown_sub_rejected(self):
        _cluster, dataset, datanet = _environment()
        model = PlacementCostModel(datanet, _profile(dataset))
        with pytest.raises(ConfigError):
            model.block_bytes("nope")

    def test_candidate_blocks_sorted(self):
        _cluster, dataset, datanet = _environment()
        model = PlacementCostModel(datanet, _profile(dataset))
        blocks = model.candidate_blocks()
        assert blocks == sorted(blocks) and blocks


# -- planner -----------------------------------------------------------------------


class TestPlanner:
    def test_seed_deterministic(self):
        _cluster, dataset, datanet = _environment()
        profile = _profile(dataset)
        a = _plan(dataset, datanet, profile)
        b = _plan(dataset, datanet, profile)
        assert a == b
        assert a.moves == b.moves

    def test_improves_and_respects_budget(self):
        _cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        assert plan.num_moves > 0
        assert plan.cost_after <= plan.cost_before
        assert plan.total_bytes <= plan.budget_bytes
        assert plan.budget_bytes == int(0.25 * dataset.total_bytes)

    def test_zero_budget_is_a_noop(self):
        _cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset), budget_bytes=0)
        assert plan.moves == ()
        assert plan.cost_after == plan.cost_before

    def test_zero_iterations_is_a_noop(self):
        _cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset), iterations=0)
        assert plan.moves == ()

    def test_invariants_hold(self):
        cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        check_plan_invariants(
            plan,
            dataset.placement(),
            num_racks=cluster.num_racks,
            rack_of=cluster.rack_of,
        )

    def test_coded_plan_keeps_stripe_geometry(self):
        cluster, dataset, datanet = _environment(coding=CodingSpec(4, 2))
        plan = _plan(dataset, datanet, _profile(dataset))
        for move in plan.moves:
            assert move.fragment_index is not None
        final = check_plan_invariants(
            plan,
            dataset.placement(),
            num_racks=cluster.num_racks,
            rack_of=cluster.rack_of,
        )
        # stripe width unchanged everywhere
        for bid, holders in final.items():
            assert len(holders) == 6
            assert len(set(holders)) == 6

    def test_validation(self):
        _cluster, dataset, datanet = _environment()
        profile = _profile(dataset)
        with pytest.raises(ConfigError):
            RebalancePlanner(dataset, datanet, profile, budget_fraction=0.0)
        with pytest.raises(ConfigError):
            RebalancePlanner(dataset, datanet, profile, budget_bytes=-1)
        with pytest.raises(ConfigError):
            RebalancePlanner(dataset, datanet, profile, iterations=-1)
        with pytest.raises(ConfigError):
            Move(dataset="d", block_id=0, src=1, dst=1, nbytes=10)
        with pytest.raises(ConfigError):
            Move(dataset="d", block_id=0, src=1, dst=2, nbytes=0)


# -- executor ----------------------------------------------------------------------


class TestExecutor:
    def test_apply_realizes_the_plan(self):
        cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        expected = check_plan_invariants(plan, dataset.placement())
        report = RebalanceExecutor(cluster).apply(plan)
        assert report.completed
        assert report.applied == plan.num_moves
        assert report.bytes_migrated == plan.total_bytes
        assert dataset.placement() == expected

    def test_reapply_is_idempotent(self):
        cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        executor = RebalanceExecutor(cluster)
        executor.apply(plan)
        digest = layout_digest(dataset)
        again = executor.apply(plan)
        assert again.applied == 0
        assert again.skipped == plan.num_moves
        assert layout_digest(dataset) == digest

    def test_crash_between_moves_resumes_byte_identical(self):
        # the reference: a crash-free run
        cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        assert plan.num_moves >= 2
        RebalanceExecutor(cluster).apply(plan)
        reference = layout_digest(dataset)

        # the drill: crash mid-plan, then replay the whole plan
        cluster2, dataset2, datanet2 = _environment()
        executor = RebalanceExecutor(cluster2)
        partial = executor.apply(plan, crash_at_move=plan.num_moves // 2)
        assert not partial.completed
        resumed = executor.apply(plan)
        assert resumed.completed
        assert resumed.skipped == partial.applied
        assert layout_digest(dataset2) == reference

    @pytest.mark.parametrize("coding", [None, CodingSpec(4, 2)])
    def test_torn_move_completes_not_restarts(self, coding):
        cluster, dataset, datanet = _environment(coding=coding)
        plan = _plan(dataset, datanet, _profile(dataset))
        assert plan.num_moves >= 1
        RebalanceExecutor(cluster).apply(plan)
        reference = layout_digest(dataset)

        cluster2, dataset2, _datanet2 = _environment(coding=coding)
        executor = RebalanceExecutor(cluster2)
        # crash in the middle of move 0: destination stored, catalog stale
        executor.apply(plan, crash_at_move=0, torn=True)
        resumed = executor.apply(plan)
        assert resumed.completed
        assert layout_digest(dataset2) == reference

    def test_journal_gets_frames_before_moves(self):
        cluster, dataset, datanet = _environment()
        plan = _plan(dataset, datanet, _profile(dataset))
        journal = MetadataJournal()
        RebalanceExecutor(cluster, datanet=datanet, journal=journal).apply(plan)
        committed = set(journal.committed_blocks)
        assert {m.block_id for m in plan.moves} <= committed

    def test_journal_requires_datanet(self):
        cluster, _dataset, _datanet = _environment()
        with pytest.raises(ConfigError):
            RebalanceExecutor(cluster, journal=MetadataJournal())

    def test_report_format(self):
        text = ExecutionReport(applied=3, bytes_migrated=99, completed=True).format()
        assert "rebalance apply" in text and "99" in text


# -- cluster move primitives -------------------------------------------------------


class TestMovePrimitives:
    def test_move_replica_validation(self):
        cluster, dataset, _datanet = _environment()
        holders = dataset.placement()[0]
        outsider = next(n for n in cluster.nodes if n not in holders)
        with pytest.raises(ConfigError):
            cluster.move_replica("d", 0, outsider, holders[0])  # src not holder
        with pytest.raises(ConfigError):
            cluster.move_replica("d", 0, holders[0], holders[1])  # dst dup
        with pytest.raises(ConfigError):
            cluster.move_replica("d", 0, holders[0], 999)  # unknown node

    def test_move_replica_updates_catalog_and_disk(self):
        cluster, dataset, _datanet = _environment()
        holders = list(dataset.placement()[0])
        src = holders[0]
        dst = next(n for n in cluster.nodes if n not in holders)
        nbytes = cluster.move_replica("d", 0, src, dst)
        assert nbytes > 0
        after = cluster.namenode.block_locations("d", 0)
        assert dst in after and src not in after
        assert cluster.datanodes[dst].has_replica("d", 0)
        assert not cluster.datanodes[src].has_replica("d", 0)


# -- cache staleness regression ----------------------------------------------------


class TestCacheInvalidation:
    def _assert_graph_tracks_catalog(self, cluster, dataset, datanet, sid):
        graph = datanet.bipartite_graph(sid)
        placement = cluster.namenode.placement(dataset.name)
        for bid in graph.blocks:
            assert graph.nodes_of(bid) == set(placement[bid]), (
                f"cached graph stale for block {bid}"
            )

    def test_rebalancer_moves_refresh_cached_graphs(self):
        cluster, dataset, datanet = _environment()
        datanet.bipartite_graph("hot")  # populate the cache
        plan = _plan(dataset, datanet, _profile(dataset))
        cluster.watch_placement(dataset.name, datanet)
        RebalanceExecutor(cluster).apply(plan)
        self._assert_graph_tracks_catalog(cluster, dataset, datanet, "hot")

    def test_balancer_moves_refresh_cached_graphs(self):
        """Regression: BlockBalancer used to mutate placement behind the
        DataNet's back; it now routes through the same cluster move path."""
        from repro.hdfs.placement import RandomPlacement

        class _Biased(RandomPlacement):
            def place(self, block_id, nodes):
                return [nodes[0], nodes[1]]

        rng = np.random.default_rng(3)
        cluster = HDFSCluster(
            num_nodes=8, block_size=2048, replication=2, rng=rng
        )
        dataset = cluster.write_dataset(
            "d", [Record("hot", float(i), "x" * 40) for i in range(600)]
        )
        cluster.placement_policy = _Biased(2, rng=rng)
        cluster.append_records(
            "d", [Record("hot", 3000.0 + i, "y" * 40) for i in range(900)]
        )
        datanet = DataNet.build(dataset, alpha=0.3)
        datanet.bipartite_graph("hot")  # populate the cache
        cluster.watch_placement(dataset.name, datanet)
        report = BlockBalancer(cluster, threshold=0.05).balance()
        assert report.num_moves > 0
        self._assert_graph_tracks_catalog(cluster, dataset, datanet, "hot")

    def test_schedule_agrees_with_fresh_datanet_after_moves(self):
        """The end-to-end consequence: post-move schedules equal those of a
        DataNet built from scratch on the moved layout."""
        cluster, dataset, datanet = _environment()
        datanet.schedule("hot")  # warm the caches
        plan = _plan(dataset, datanet, _profile(dataset))
        cluster.watch_placement(dataset.name, datanet)
        RebalanceExecutor(cluster).apply(plan)
        fresh = DataNet.build(dataset, alpha=0.3)
        stale_view = datanet.schedule("hot")
        fresh_view = fresh.schedule("hot")
        assert stale_view.blocks_by_node == fresh_view.blocks_by_node
