"""Rebalancing under chaos: the executor must be raceable and crash-safe.

Three oracles:

* a fixed-seed drill that rebalances first and then survives node
  crashes plus a rack partition reruns **bit-for-bit** — same layout
  digest, same job output, same recovery ledger;
* a crash in the middle of applying the plan (between moves, and mid-move
  with the destination copy already written) replays to the same
  byte-identical layout the crash-free run reaches;
* the serve daemon's drill stays digest-deterministic when a rebalance
  pre-pass runs under it (``DrillConfig.rebalance_budget``), and legacy
  digests are untouched when the budget is zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataNet, HDFSCluster
from repro.errors import ConfigError
from repro.faults import ChaosRunner, FaultPlan, NodeCrash, RetryPolicy
from repro.faults.plan import NetworkPartition
from repro.mapreduce.apps.word_count import word_count_job
from repro.rebalance import (
    RebalanceExecutor,
    RebalancePlanner,
    WorkloadProfile,
    layout_digest,
)
from repro.serve.scenario import DrillConfig, run_service_drill
from tests.conftest import make_records

DRILL_PLAN = FaultPlan(
    seed=3,
    crashes=(NodeCrash(2, time=0.5), NodeCrash(5, time=1.1)),
    partitions=(NetworkPartition(rack=1, start=0.3, heals_at=1.4),),
)


def _environment(seed=11):
    cluster = HDFSCluster(
        num_nodes=8,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(seed),
    )
    recs = make_records({"hot": 200, "warm": 100, "cold": 60}, payload_len=30)
    dataset = cluster.write_dataset("d", recs)
    datanet = DataNet.build(dataset, alpha=0.3)
    return cluster, dataset, datanet


def _plan_for(dataset, datanet):
    sizes = dataset.subdataset_sizes()
    weights = {sid: float(nbytes) for sid, nbytes in sizes.items()}
    weights["hot"] = 4.0 * max(weights.values())
    return RebalancePlanner(
        dataset,
        datanet,
        WorkloadProfile(weights),
        seed=5,
        iterations=1500,
    ).plan()


def _rebalanced_drill(*, crash_at_move=None, torn=False):
    """Rebalance the layout, then race the chaos drill over it."""
    cluster, dataset, datanet = _environment()
    plan = _plan_for(dataset, datanet)
    cluster.watch_placement(dataset.name, datanet)
    executor = RebalanceExecutor(cluster)
    if crash_at_move is not None:
        executor.apply(plan, crash_at_move=crash_at_move, torn=torn)
    report = executor.apply(plan)  # resume (or the only pass)
    assert report.completed
    digest = layout_digest(dataset)
    runner = ChaosRunner(cluster, DRILL_PLAN, retry=RetryPolicy())
    chaos = runner.run(dataset, "hot", word_count_job())
    return plan, digest, chaos


class TestRebalanceUnderChaos:
    def test_drill_reruns_bit_for_bit(self):
        plan_a, digest_a, chaos_a = _rebalanced_drill()
        plan_b, digest_b, chaos_b = _rebalanced_drill()
        assert plan_a == plan_b
        assert digest_a == digest_b
        assert repr(chaos_a.job) == repr(chaos_b.job)
        assert chaos_a.attempts_histogram == chaos_b.attempts_histogram
        assert chaos_a.rescheduled_blocks == chaos_b.rescheduled_blocks
        assert chaos_a.dead_nodes == chaos_b.dead_nodes

    def test_drill_output_matches_failure_free_baseline(self):
        _plan, _digest, chaos = _rebalanced_drill()
        assert chaos.output_matches_baseline

    def test_mid_plan_crash_replays_to_same_layout_and_output(self):
        plan, reference_digest, reference_chaos = _rebalanced_drill()
        assert plan.num_moves >= 2
        _plan, digest, chaos = _rebalanced_drill(
            crash_at_move=plan.num_moves // 2
        )
        assert digest == reference_digest
        assert repr(chaos.job) == repr(reference_chaos.job)

    def test_torn_move_crash_replays_to_same_layout(self):
        plan, reference_digest, _reference = _rebalanced_drill()
        assert plan.num_moves >= 1
        _plan, digest, _chaos = _rebalanced_drill(crash_at_move=0, torn=True)
        assert digest == reference_digest


class TestServeDrillWithRebalance:
    def test_rebalance_budget_validation(self):
        with pytest.raises(ConfigError):
            DrillConfig(rebalance_budget=-0.1)
        with pytest.raises(ConfigError):
            DrillConfig(rebalance_budget=1.5)

    def test_drill_digests_deterministic_with_rebalance(self):
        config = DrillConfig(jobs=8, rebalance_budget=0.2)
        a = run_service_drill(config)
        b = run_service_drill(config)
        assert a.metadata_digest == b.metadata_digest
        assert a.results_digest == b.results_digest
        assert a.completed == b.completed

    def test_zero_budget_preserves_legacy_digests(self):
        base = DrillConfig(jobs=8)
        explicit = DrillConfig(jobs=8, rebalance_budget=0.0)
        a = run_service_drill(base)
        b = run_service_drill(explicit)
        assert a.metadata_digest == b.metadata_digest
        assert a.results_digest == b.results_digest
