"""Property-based invariants of the rebalance planner.

Any :class:`~repro.rebalance.RebalancePlan` — whatever the seed, budget,
workload shape, or coding geometry — must preserve the placement
invariants: no two replicas of a block on one node, coded fragments keep
their stripe index and rack spread, and the migrated bytes stay within
the budget.  :func:`~repro.rebalance.check_plan_invariants` raises on
the first violation; these tests drive it over randomized environments
and additionally assert what the checker itself cannot see (replica
counts, executor agreement with the symbolic replay).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DataNet, HDFSCluster, Record
from repro.coding import CodingSpec
from repro.rebalance import (
    RebalanceExecutor,
    RebalancePlanner,
    WorkloadProfile,
    check_plan_invariants,
)


def _random_environment(seed: int, *, num_sids: int, coding=None):
    rng = np.random.default_rng(seed)
    cluster = HDFSCluster(
        num_nodes=int(rng.integers(6, 10)),
        block_size=2048,
        replication=3,
        rng=rng,
        coding=coding,
    )
    records = []
    t = 0.0
    # one clustered hot run plus a shuffled tail: enough skew to move
    for _ in range(int(rng.integers(120, 240))):
        records.append(Record("s0", t, "h" * 30))
        t += 1.0
    for _ in range(int(rng.integers(120, 240))):
        sid = f"s{int(rng.integers(num_sids))}"
        records.append(Record(sid, t, "c" * 30))
        t += 1.0
    dataset = cluster.write_dataset("d", records)
    datanet = DataNet.build(dataset, alpha=0.3)
    sizes = dataset.subdataset_sizes()
    profile = WorkloadProfile(
        {sid: float(nbytes) for sid, nbytes in sizes.items()}
    )
    return cluster, dataset, datanet, profile


def _check(cluster, dataset, plan):
    return check_plan_invariants(
        plan,
        dataset.placement(),
        num_racks=cluster.num_racks,
        rack_of=cluster.rack_of,
    )


class TestPlanInvariantProperties:
    @given(
        env_seed=st.integers(0, 10**6),
        plan_seed=st.integers(0, 100),
        budget_fraction=st.sampled_from([0.05, 0.15, 0.3, 1.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_replicated_plans_keep_invariants(
        self, env_seed, plan_seed, budget_fraction
    ):
        cluster, dataset, datanet, profile = _random_environment(
            env_seed, num_sids=4
        )
        plan = RebalancePlanner(
            dataset,
            datanet,
            profile,
            budget_fraction=budget_fraction,
            seed=plan_seed,
            iterations=400,
        ).plan()
        final = _check(cluster, dataset, plan)  # raises on any violation
        assert plan.total_bytes <= plan.budget_bytes
        # replica count per block is conserved, holders stay distinct
        for bid, holders in dataset.placement().items():
            assert len(final[bid]) == len(holders)
            assert len(set(final[bid])) == len(final[bid])

    @given(env_seed=st.integers(0, 10**6), plan_seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_property_coded_plans_keep_stripe_and_rack_spread(
        self, env_seed, plan_seed
    ):
        cluster, dataset, datanet, profile = _random_environment(
            env_seed, num_sids=3, coding=CodingSpec(4, 2)
        )
        plan = RebalancePlanner(
            dataset, datanet, profile, seed=plan_seed, iterations=400
        ).plan()
        final = _check(cluster, dataset, plan)  # rack spread asserted inside
        for move in plan.moves:
            assert move.fragment_index is not None
        for bid, holders in final.items():
            assert len(holders) == 6 and len(set(holders)) == 6

    @given(env_seed=st.integers(0, 10**6), plan_seed=st.integers(0, 100))
    @settings(max_examples=6, deadline=None)
    def test_property_executor_realizes_symbolic_replay(
        self, env_seed, plan_seed
    ):
        """Applying a plan against the live cluster lands on exactly the
        layout the symbolic checker computes."""
        cluster, dataset, datanet, profile = _random_environment(
            env_seed, num_sids=4
        )
        plan = RebalancePlanner(
            dataset, datanet, profile, seed=plan_seed, iterations=300
        ).plan()
        expected = _check(cluster, dataset, plan)
        report = RebalanceExecutor(cluster).apply(plan)
        assert report.completed and report.applied == plan.num_moves
        assert dataset.placement() == expected

    @given(env_seed=st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_property_planning_is_seed_deterministic(self, env_seed):
        _cluster, dataset, datanet, profile = _random_environment(
            env_seed, num_sids=4
        )
        kwargs = dict(seed=9, iterations=300)
        a = RebalancePlanner(dataset, datanet, profile, **kwargs).plan()
        b = RebalancePlanner(dataset, datanet, profile, **kwargs).plan()
        assert a == b
