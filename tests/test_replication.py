"""Tests for the replicated metadata plane (repro.replication): quorum
journal semantics, fencing, anti-entropy catch-up, deterministic leader
election, and the cluster-side fencing of placement mutations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HDFSCluster
from repro.core.builder import ElasticMapBuilder
from repro.errors import (
    ConfigError,
    QuorumLostError,
    StaleLeaderError,
    TornFrameError,
)
from repro.replication import (
    JournalReplica,
    LeaderElector,
    QuorumFrame,
    ReplicatedJournal,
    detection_delay,
)
from repro.replication.journal import MAGIC, read_frames
from tests.conftest import make_records


def _blocks(n=4):
    builder = ElasticMapBuilder(alpha=0.5)
    return [
        builder.build_block(i, [("a", 10 * (i + 1)), ("b", 5)])
        for i in range(n)
    ]


# -- frames and replica logs --------------------------------------------------------


class TestQuorumFrame:
    def test_validation(self):
        with pytest.raises(ConfigError):
            QuorumFrame(epoch=-1, seq=1, block_id=0, payload=b"x")
        with pytest.raises(ConfigError):
            QuorumFrame(epoch=0, seq=0, block_id=0, payload=b"x")

    def test_round_trip(self):
        frame = QuorumFrame(epoch=3, seq=7, block_id=2, payload=b"payload")
        frames, torn = read_frames(MAGIC + frame.to_bytes())
        assert frames == [frame]
        assert torn == 0

    def test_torn_final_frame_is_clean_stop(self):
        f1 = QuorumFrame(1, 1, 0, b"aa")
        f2 = QuorumFrame(1, 2, 1, b"bb")
        blob = MAGIC + f1.to_bytes() + f2.to_bytes()
        frames, torn = read_frames(blob[:-3])
        assert frames == [f1]
        assert torn == len(f2.to_bytes()) - 3

    def test_corrupt_non_final_frame_raises_torn_frame_error(self):
        f1 = QuorumFrame(1, 1, 0, b"aa")
        f2 = QuorumFrame(1, 2, 1, b"bb")
        blob = bytearray(MAGIC + f1.to_bytes() + f2.to_bytes())
        blob[len(MAGIC) + 6] ^= 0xFF  # flip a byte inside frame 1
        with pytest.raises(TornFrameError) as exc:
            read_frames(bytes(blob))
        assert exc.value.offset == len(MAGIC)
        assert exc.value.expected_checksum != exc.value.actual_checksum

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigError):
            read_frames(b"NOPE" + b"\x00" * 32)


class TestJournalReplica:
    def test_dense_prefix_enforced(self):
        replica = JournalReplica("r")
        assert replica.install(QuorumFrame(1, 1, 0, b"a"), leader_epoch=1)
        # a gap is refused, a duplicate is an idempotent ack
        assert not replica.install(QuorumFrame(1, 3, 2, b"c"), leader_epoch=1)
        assert replica.install(QuorumFrame(1, 1, 0, b"a"), leader_epoch=1)
        assert replica.last_seq == 1

    def test_fencing_checks_driving_leader_not_frame(self):
        replica = JournalReplica("r")
        replica.promise(5)
        # an old-epoch committed frame transfers fine under a new leader
        assert replica.install(QuorumFrame(2, 1, 0, b"a"), leader_epoch=5)
        # but a deposed leader driving the install is refused
        assert not replica.install(QuorumFrame(2, 2, 1, b"b"), leader_epoch=2)

    def test_promise_is_monotonic(self):
        replica = JournalReplica("r")
        assert replica.promise(3)
        assert not replica.promise(2)
        assert replica.promised_epoch == 3

    def test_crash_at_byte_truncates_to_committed_prefix(self):
        replica = JournalReplica("r")
        f1, f2 = QuorumFrame(1, 1, 0, b"aa"), QuorumFrame(1, 2, 1, b"bb")
        replica.install(f1, leader_epoch=1)
        replica.install(f2, leader_epoch=1)
        replica.crash(at_byte=len(MAGIC) + len(f1.to_bytes()) + 4)
        assert not replica.up
        assert replica.frames == (f1,)
        replica.restore()
        assert replica.install(f2, leader_epoch=1)


# -- the quorum journal -------------------------------------------------------------


class TestReplicatedJournal:
    def test_append_acks_at_quorum_and_is_idempotent(self):
        journal = ReplicatedJournal(3)
        blocks = _blocks(2)
        assert journal.append_block(blocks[0])
        assert not journal.append_block(blocks[0])  # first commit wins
        assert journal.append_block(blocks[1])
        assert journal.record_count == 2
        assert journal.committed_blocks == [0, 1]
        assert all(lag == 0 for lag in journal.replica_lag().values())

    def test_minority_crash_never_blocks_commits(self):
        journal = ReplicatedJournal(3)
        journal.crash_replica("journal-2")
        for bm in _blocks(3):
            assert journal.append_block(bm)
        assert journal.replica_lag()["journal-2"] == 3
        assert journal.peak_lag == 3

    def test_majority_loss_raises_quorum_lost(self):
        journal = ReplicatedJournal(3)
        journal.crash_replica("journal-1")
        journal.crash_replica("journal-2")
        with pytest.raises(QuorumLostError) as exc:
            journal.append_block(_blocks(1)[0])
        assert exc.value.acks == 1
        assert exc.value.quorum == 2
        # a failed round writes nothing: logs never diverge
        assert journal.record_count == 0
        assert journal.replicas["journal-0"].last_seq == 0

    def test_restore_catches_up_via_anti_entropy(self):
        journal = ReplicatedJournal(3)
        journal.crash_replica("journal-2")
        for bm in _blocks(4):
            journal.append_block(bm)
        moved = journal.restore_replica("journal-2")
        assert moved == 4
        assert journal.replica_lag()["journal-2"] == 0
        assert journal.frames_transferred >= 4

    def test_partition_heal_catches_up(self):
        journal = ReplicatedJournal(5)
        journal.partition(["journal-0", "journal-1"])
        for bm in _blocks(2):
            journal.append_block(bm)
        assert journal.replica_lag()["journal-0"] == 2
        moved = journal.heal(["journal-0", "journal-1"])
        assert moved == 4
        assert all(lag == 0 for lag in journal.replica_lag().values())

    def test_quorum_of_one(self):
        journal = ReplicatedJournal(1)
        assert journal.quorum == 1
        assert journal.append_block(_blocks(1)[0])

    def test_recover_adopts_longest_log(self):
        journal = ReplicatedJournal(3)
        blocks = _blocks(3)
        journal.append_block(blocks[0])
        journal.crash_replica("journal-2")
        journal.append_block(blocks[1])
        journal.append_block(blocks[2])
        journal.restore_replica("journal-2")
        # a fresh journal object models the new leader reading the replicas
        successor = ReplicatedJournal(3)
        successor.replicas = journal.replicas
        entries = successor.recover()
        assert sorted(entries) == [0, 1, 2]
        assert successor.committed_seq == 3
        assert entries == journal.entries

    def test_recover_below_quorum_refused(self):
        journal = ReplicatedJournal(3)
        journal.append_block(_blocks(1)[0])
        journal.crash_replica("journal-0")
        journal.crash_replica("journal-1")
        with pytest.raises(QuorumLostError):
            journal.recover()


class TestFencing:
    def test_fence_requires_quorum_of_promises(self):
        journal = ReplicatedJournal(3)
        journal.crash_replica("journal-1")
        journal.crash_replica("journal-2")
        with pytest.raises(QuorumLostError):
            journal.fence(1)

    def test_fence_never_regresses(self):
        journal = ReplicatedJournal(3)
        journal.fence(4)
        with pytest.raises(StaleLeaderError) as exc:
            journal.fence(3)
        assert exc.value.epoch == 3
        assert exc.value.fence == 4

    def test_stale_epoch_append_rejected_after_fencing(self):
        """The split-brain guard: once a new epoch is fenced onto a
        majority, the deposed leader's next append must fail typed."""
        journal = ReplicatedJournal(3)
        blocks = _blocks(3)
        journal.fence(1)
        assert journal.append_block(blocks[0], epoch=1)
        # a new leader fences epoch 2 onto the quorum
        journal.fence(2)
        with pytest.raises(StaleLeaderError) as exc:
            journal.append_block(blocks[1], epoch=1)
        assert exc.value.epoch == 1
        assert exc.value.fence == 2
        assert journal.stale_rejections == 1
        # the rejected round wrote nothing anywhere
        assert journal.record_count == 1
        # the fenced epoch keeps working
        assert journal.append_block(blocks[2], epoch=2)


# -- leader election ----------------------------------------------------------------


class TestLeaderElector:
    NODES = ["journal-0", "journal-1", "journal-2"]

    def test_same_seed_same_leader(self):
        a = LeaderElector(self.NODES, seed=7).elect(self.NODES)
        b = LeaderElector(self.NODES, seed=7).elect(self.NODES)
        assert (a.leader, a.term, a.elapsed_s) == (b.leader, b.term, b.elapsed_s)
        assert a.leader in self.NODES
        assert a.elapsed_s > 0

    def test_minority_cannot_elect(self):
        elector = LeaderElector(self.NODES, seed=0)
        with pytest.raises(QuorumLostError):
            elector.elect(["journal-0"])

    def test_non_member_rejected(self):
        with pytest.raises(ConfigError):
            LeaderElector(self.NODES).elect(self.NODES + ["intruder"])

    def test_at_most_one_leader_per_term(self):
        elector = LeaderElector([f"n{i}" for i in range(5)], seed=3)
        for live in (elector.nodes, elector.nodes[:3], elector.nodes[1:]):
            elector.elect(list(live))
        by_term = elector.leaders_by_term()
        assert len(by_term) == 3
        # terms strictly increase and every record stays consistent
        assert sorted(by_term) == list(by_term)
        for record in elector.history:
            if record.won:
                assert by_term[record.term] == record.candidate

    def test_detection_delay_matches_health_detector(self):
        from repro.faults import HealthDetector

        detector = HealthDetector(expected_interval_s=0.5)
        for i in range(8):
            detector.record("leader", 0.5 * i)
        mean = detector.mean_interval("leader")
        delay = detection_delay(mean, 1.0)
        last = 0.5 * 7
        assert detector.suspicion("leader", last + delay) >= 1.0
        assert detector.suspicion("leader", last + 0.5 * delay) < 1.0

    def test_detection_delay_validation(self):
        with pytest.raises(ConfigError):
            detection_delay(0.0, 1.0)
        with pytest.raises(ConfigError):
            detection_delay(1.0, -1.0)


# -- cluster-side fencing of placement mutations ------------------------------------


class TestClusterFence:
    def _cluster(self):
        cluster = HDFSCluster(
            num_nodes=6,
            block_size=2048,
            replication=3,
            rng=np.random.default_rng(11),
        )
        recs = make_records({"hot": 120, "cold": 60}, payload_len=30)
        dataset = cluster.write_dataset("d", recs)
        return cluster, dataset

    def _movable(self, cluster, dataset):
        placement = dataset.placement()
        bid = sorted(placement)[0]
        src = placement[bid][0]
        dst = next(
            n for n in range(cluster.num_nodes) if n not in placement[bid]
        )
        return bid, src, dst

    def test_stale_epoch_move_rejected(self):
        cluster, dataset = self._cluster()
        cluster.install_fence(3)
        bid, src, dst = self._movable(cluster, dataset)
        before = dict(dataset.placement())
        with pytest.raises(StaleLeaderError):
            cluster.move_replica("d", bid, src, dst, epoch=2)
        assert dict(dataset.placement()) == before  # nothing moved

    def test_current_epoch_move_allowed(self):
        cluster, dataset = self._cluster()
        cluster.install_fence(3)
        bid, src, dst = self._movable(cluster, dataset)
        cluster.move_replica("d", bid, src, dst, epoch=3)
        assert dst in dataset.placement()[bid]

    def test_unfenced_move_unchecked(self):
        cluster, dataset = self._cluster()
        cluster.install_fence(3)
        bid, src, dst = self._movable(cluster, dataset)
        cluster.move_replica("d", bid, src, dst)  # epoch=None passes

    def test_fence_install_is_monotonic(self):
        cluster, _ = self._cluster()
        cluster.install_fence(2)
        with pytest.raises(StaleLeaderError):
            cluster.install_fence(1)
        assert cluster.fence_epoch == 2
