"""Property-based tests for the replicated metadata plane.

Three invariants hold for *every* reachable state, not just the drill
scripts: a term never elects two leaders, a crash at any byte of any
replica log never loses a committed frame, and the quorum log's
``(epoch, seq)`` stamps are strictly monotonic with dense sequence
numbers under any interleaving of appends, fences, and faults.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import ElasticMapBuilder
from repro.errors import QuorumLostError, StaleLeaderError
from repro.replication import LeaderElector, ReplicatedJournal


def _block(bid: int):
    return ElasticMapBuilder(alpha=0.5).build_block(
        bid, [("a", 10 + bid), ("b", 5)]
    )


# -- at most one leader per term ----------------------------------------------------


@given(
    num_nodes=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_at_most_one_leader_per_term(num_nodes, seed, data):
    nodes = [f"n{i}" for i in range(num_nodes)]
    elector = LeaderElector(nodes, seed=seed)
    elections = data.draw(
        st.lists(
            st.sets(st.sampled_from(nodes), min_size=1),
            min_size=1,
            max_size=5,
        ),
        label="live sets",
    )
    for live in elections:
        try:
            result = elector.elect(sorted(live))
        except QuorumLostError:
            assert len(live) < elector.majority
            continue
        assert result.leader in live
        assert result.rounds[-1].votes >= elector.majority
    by_term = elector.leaders_by_term()
    # the history may contain split (lost) terms, but every term that
    # appears in the oracle elected exactly one leader
    won = [r for r in elector.history if r.won]
    assert len(won) == len(by_term)
    assert all(by_term[r.term] == r.candidate for r in won)
    # terms strictly increase across the whole history
    terms = [r.term for r in elector.history]
    assert terms == sorted(set(terms))


# -- no committed-frame loss across any crash point ---------------------------------


@given(
    num_replicas=st.sampled_from([3, 5]),
    num_blocks=st.integers(min_value=1, max_value=6),
    victim=st.integers(min_value=0, max_value=4),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_committed_frames_survive_crash_at_any_byte(
    num_replicas, num_blocks, victim, cut_fraction
):
    journal = ReplicatedJournal(num_replicas)
    committed = {}
    for bid in range(num_blocks):
        bm = _block(bid)
        assert journal.append_block(bm)
        committed[bid] = bm.to_bytes()

    rid = f"journal-{victim % num_replicas}"
    replica = journal.replicas[rid]
    at_byte = int(cut_fraction * len(replica))
    journal.crash_replica(rid, at_byte=at_byte)

    # the survivors still hold a majority, so recovery sees every commit
    recovered = journal.recover()
    assert recovered == committed

    # and the crashed replica catches back up to the full dense prefix
    journal.restore_replica(rid)
    assert journal.replica_lag()[rid] == 0
    assert [f.seq for f in replica.frames] == list(
        range(1, num_blocks + 1)
    )


# -- (epoch, seq) monotonicity under any append/fence/fault interleaving ------------


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 9)),
        st.tuples(st.just("fence"), st.integers(1, 8)),
        st.tuples(st.just("crash"), st.integers(0, 2)),
        st.tuples(st.just("restore"), st.integers(0, 2)),
    ),
    min_size=1,
    max_size=24,
)


@given(ops=_ops)
@settings(max_examples=60, deadline=None)
def test_quorum_log_epoch_seq_monotonic(ops):
    journal = ReplicatedJournal(3)
    for op, arg in ops:
        if op == "append":
            try:
                journal.append_block(_block(arg))
            except (QuorumLostError, StaleLeaderError):
                pass
        elif op == "fence":
            try:
                journal.fence(arg)
            except (QuorumLostError, StaleLeaderError):
                pass
        elif op == "crash":
            journal.crash_replica(f"journal-{arg}")
        else:
            journal.restore_replica(f"journal-{arg}")

    for replica in journal.replicas.values():
        stamps = [(f.epoch, f.seq) for f in replica.frames]
        # strictly monotonic stamps, dense seq prefix
        assert stamps == sorted(set(stamps))
        assert all(a < b for a, b in zip(stamps, stamps[1:]))
        assert [s for _, s in stamps] == list(range(1, len(stamps) + 1))
    # every replica's log is a prefix of the committed log
    committed = [(f.epoch, f.seq) for f in journal._frames]
    for replica in journal.replicas.values():
        stamps = [(f.epoch, f.seq) for f in replica.frames]
        assert stamps == committed[: len(stamps)]


def test_properties_are_exercised():
    """Sanity: the strategies above reach both split and clean elections."""
    elector = LeaderElector([f"n{i}" for i in range(5)], seed=1)
    for _ in range(6):
        elector.elect(list(elector.nodes))
    assert any(r.won for r in elector.history)
