"""Tests for the scaling and heterogeneous experiment drivers (small scale)."""

from __future__ import annotations

import pytest

from repro.experiments import ReferenceConfig
from repro.experiments.heterogeneous import run_heterogeneous
from repro.experiments.scaling import run_scaling

SMALL = ReferenceConfig.small()


class TestScaling:
    def test_points_cover_requested_sizes(self):
        r = run_scaling(SMALL, cluster_sizes=(4, 8))
        assert [p.num_nodes for p in r.points] == [4, 8]

    def test_datanet_never_less_balanced(self):
        r = run_scaling(SMALL, cluster_sizes=(4, 8))
        for p in r.points:
            assert p.imbalance_with <= p.imbalance_without + 0.05

    def test_format(self):
        r = run_scaling(SMALL, cluster_sizes=(4,))
        assert "scaling" in r.format().lower()

    def test_accessors(self):
        r = run_scaling(SMALL, cluster_sizes=(4, 8))
        assert len(r.imbalances_without()) == 2
        assert len(r.improvements()) == 2


class TestHeterogeneous:
    def test_capacity_aware_wins(self):
        r = run_heterogeneous(SMALL)
        ms = r.makespans
        assert ms["Algorithm 1 (capacity-aware)"] <= ms["Algorithm 1 (capacity-blind)"] * 1.05

    def test_fast_nodes_take_more(self):
        r = run_heterogeneous(SMALL, speed_ratio=3.0)
        assert r.fast_fraction_aware > 0.5

    def test_format(self):
        assert "Heterogeneous" in run_heterogeneous(SMALL).format()
