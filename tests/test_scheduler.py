"""Tests for Algorithm 1 (distribution-aware balanced scheduling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bipartite import BipartiteGraph
from repro.core.scheduler import Assignment, DistributionAwareScheduler
from repro.errors import ConfigError, SchedulingError


def _random_graph(rng: np.random.Generator, num_nodes=8, num_blocks=40, replication=3):
    placement = {
        b: list(rng.choice(num_nodes, size=min(replication, num_nodes), replace=False))
        for b in range(num_blocks)
    }
    # Gamma-distributed weights model content clustering (paper Section II-B)
    weights = {b: int(w) for b, w in enumerate(rng.gamma(1.2, 7.0, num_blocks) * 100)}
    return BipartiteGraph(placement, weights, nodes=list(range(num_nodes)))


class TestAssignmentMetrics:
    def test_basic_metrics(self):
        a = Assignment(
            blocks_by_node={0: [0, 1], 1: [2]},
            workload_by_node={0: 30, 1: 10},
            local_assignments=2,
            remote_assignments=1,
        )
        assert a.num_tasks == 3
        assert a.max_workload == 30
        assert a.min_workload == 10
        assert a.mean_workload == 20
        assert a.imbalance == 1.5
        assert a.locality_fraction == pytest.approx(2 / 3)
        assert a.node_of_block == {0: 0, 1: 0, 2: 1}

    def test_std_workload(self):
        a = Assignment({0: [], 1: []}, {0: 10, 1: 30})
        assert a.std_workload == pytest.approx(10.0)

    def test_empty_assignment(self):
        a = Assignment({}, {})
        assert a.max_workload == 0
        assert a.imbalance == 1.0
        assert a.locality_fraction == 1.0


class TestAlgorithm1:
    def test_all_blocks_assigned_exactly_once(self):
        rng = np.random.default_rng(1)
        g = _random_graph(rng)
        a = DistributionAwareScheduler().schedule(g)
        assigned = sorted(b for bs in a.blocks_by_node.values() for b in bs)
        assert assigned == g.blocks

    def test_input_graph_not_mutated(self):
        rng = np.random.default_rng(2)
        g = _random_graph(rng)
        before = g.num_blocks
        DistributionAwareScheduler().schedule(g)
        assert g.num_blocks == before

    def test_workloads_consistent_with_blocks(self):
        rng = np.random.default_rng(3)
        g = _random_graph(rng)
        a = DistributionAwareScheduler().schedule(g)
        for node, blocks in a.blocks_by_node.items():
            assert a.workload_by_node[node] == sum(g.weight(b) for b in blocks)

    def test_balance_beats_naive_locality(self):
        """Algorithm 1's max workload is no worse than a block-count-greedy
        locality assignment on a clustered workload."""
        rng = np.random.default_rng(4)
        g = _random_graph(rng, num_nodes=8, num_blocks=64)
        a = DistributionAwareScheduler().schedule(g)
        # naive: block -> first replica holder (pure locality, blind to weights)
        naive_load = {n: 0 for n in g.nodes}
        for b in g.blocks:
            first = sorted(g.nodes_of(b))[0]
            naive_load[first] += g.weight(b)
        assert a.max_workload <= max(naive_load.values())

    def test_near_perfect_balance_on_uniform_weights(self):
        placement = {b: [b % 4, (b + 1) % 4, (b + 2) % 4] for b in range(40)}
        weights = {b: 10 for b in range(40)}
        g = BipartiteGraph(placement, weights)
        a = DistributionAwareScheduler().schedule(g)
        assert a.max_workload - a.min_workload <= 10

    def test_prefers_local_assignment(self):
        rng = np.random.default_rng(5)
        g = _random_graph(rng, num_nodes=4, num_blocks=32, replication=3)
        a = DistributionAwareScheduler().schedule(g)
        # with 3/4 of the cluster holding each block, locality should be easy
        assert a.locality_fraction > 0.9

    def test_remote_assignment_when_node_has_no_local_blocks(self):
        # node 9 holds nothing; it must still be allowed to take tasks
        placement = {b: [0] for b in range(8)}
        weights = {b: 10 for b in range(8)}
        g = BipartiteGraph(placement, weights, nodes=[0, 9])
        a = DistributionAwareScheduler().schedule(g)
        assert a.remote_assignments > 0
        assert len(a.blocks_by_node[9]) > 0

    def test_zero_weight_blocks_all_assigned(self):
        placement = {b: [b % 3] for b in range(9)}
        g = BipartiteGraph(placement, {b: 0 for b in range(9)}, nodes=[0, 1, 2])
        a = DistributionAwareScheduler().schedule(g)
        assert a.num_tasks == 9
        # fall back to task-count balance
        counts = [len(v) for v in a.blocks_by_node.values()]
        assert max(counts) - min(counts) <= 1

    def test_empty_graph(self):
        g = BipartiteGraph({}, {}, nodes=[0, 1])
        a = DistributionAwareScheduler().schedule(g)
        assert a.num_tasks == 0

    def test_no_nodes_raises(self):
        g = BipartiteGraph({}, {}, nodes=[])
        with pytest.raises(SchedulingError):
            DistributionAwareScheduler().schedule(g)

    def test_deterministic(self):
        rng = np.random.default_rng(6)
        g = _random_graph(rng)
        a1 = DistributionAwareScheduler().schedule(g)
        a2 = DistributionAwareScheduler().schedule(g)
        assert a1.blocks_by_node == a2.blocks_by_node

    @given(st.integers(2, 10), st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_complete_and_consistent(self, num_nodes, num_blocks, seed):
        rng = np.random.default_rng(seed)
        g = _random_graph(rng, num_nodes=num_nodes, num_blocks=num_blocks)
        a = DistributionAwareScheduler().schedule(g)
        assigned = sorted(b for bs in a.blocks_by_node.values() for b in bs)
        assert assigned == g.blocks  # every block exactly once
        assert sum(a.workload_by_node.values()) == g.total_weight()


class TestHeterogeneous:
    def test_capacity_proportional_shares(self):
        placement = {b: [0, 1] for b in range(40)}
        weights = {b: 10 for b in range(40)}
        g = BipartiteGraph(placement, weights)
        a = DistributionAwareScheduler({0: 3.0, 1: 1.0}).schedule(g)
        # node 0 should get ~3x the workload of node 1
        ratio = a.workload_by_node[0] / max(a.workload_by_node[1], 1)
        assert 2.0 <= ratio <= 4.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            DistributionAwareScheduler({0: 0.0})

    def test_missing_capacity_raises(self):
        g = BipartiteGraph({0: [0, 1]}, {0: 5})
        with pytest.raises(SchedulingError):
            DistributionAwareScheduler({0: 1.0}).schedule(g)


class TestDelayScheduling:
    def test_off_by_default(self):
        assert DistributionAwareScheduler().max_deferrals == 0

    def test_deferral_improves_locality_in_sparse_graphs(self):
        # 3 blocks, 8 nodes: without deferral the first requesters grab
        # remote blocks; with it, the replica holders take them locally.
        placement = {b: [5, 6, 7] for b in range(3)}
        weights = {b: 10 for b in range(3)}
        g = BipartiteGraph(placement, weights, nodes=list(range(8)))
        eager = DistributionAwareScheduler().schedule(g)
        patient = DistributionAwareScheduler(max_deferrals=3).schedule(g)
        assert patient.locality_fraction >= eager.locality_fraction
        assert patient.locality_fraction == 1.0

    def test_deferral_still_assigns_everything(self):
        placement = {b: [0] for b in range(6)}
        g = BipartiteGraph(placement, {b: 1 for b in range(6)}, nodes=[0, 9])
        a = DistributionAwareScheduler(max_deferrals=2).schedule(g)
        assert a.num_tasks == 6

    def test_negative_deferrals_rejected(self):
        with pytest.raises(ConfigError):
            DistributionAwareScheduler(max_deferrals=-1)
