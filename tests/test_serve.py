"""Tests for the multi-tenant analysis service: admission, deadlines,
crash-safe journaling, and the deterministic soak drill."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import ElasticMapBuilder
from repro.errors import ConfigError, DeadlineExceeded, Overloaded
from repro.faults import FaultPlan, RetryPolicy, ServiceCrash
from repro.metrics import ServiceSummary
from repro.obs import Observability
from repro.serve import (
    AdmissionController,
    DrillConfig,
    MetadataJournal,
    TenantSpec,
    TokenBucket,
    WeightedFairQueue,
    array_digest,
    build_drill,
    run_service_drill,
)
from repro.sim import DiscreteEventSimulator, SimTask


# ---------------------------------------------------------------------------
# admission control


class TestTokenBucket:
    def test_burst_then_quota(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # one token refills per second
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)

    def test_infinite_rate_never_blocks(self):
        bucket = TokenBucket(rate=math.inf, burst=1.0)
        for _ in range(10):
            assert bucket.try_take(0.0)

    def test_clock_must_not_go_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.try_take(5.0)
        with pytest.raises(ConfigError):
            bucket.try_take(4.0)


class TestWeightedFairQueue:
    def test_single_tenant_preserves_insertion_order(self):
        q: WeightedFairQueue[str] = WeightedFairQueue([TenantSpec("a")])
        for item in ("x", "y", "z"):
            q.push("a", item)
        assert [item for _t, item in q.drain()] == ["x", "y", "z"]

    def test_weights_shape_drain_ratio(self):
        q: WeightedFairQueue[int] = WeightedFairQueue(
            [TenantSpec("heavy", weight=2.0), TenantSpec("light", weight=1.0)]
        )
        for i in range(6):
            q.push("heavy", i)
            q.push("light", i)
        order = [t for t, _ in q.drain()]
        # among the first 6 pops, the weight-2 tenant gets twice the slots
        assert order[:6].count("heavy") == 4

    def test_unknown_tenant_rejected(self):
        q: WeightedFairQueue[int] = WeightedFairQueue([TenantSpec("a")])
        with pytest.raises(ConfigError):
            q.push("nope", 1)


class TestAdmissionController:
    def _controller(self, **kwargs) -> AdmissionController:
        tenants = kwargs.pop(
            "tenants",
            [TenantSpec("a", rate=1.0, burst=2.0), TenantSpec("b")],
        )
        return AdmissionController(tenants, **kwargs)

    def test_quota_starvation_is_typed(self):
        ctrl = self._controller()
        ctrl.submit("a", 1, 0.0)
        ctrl.submit("a", 2, 0.0)
        with pytest.raises(Overloaded) as exc:
            ctrl.submit("a", 3, 0.0)
        assert exc.value.reason == "quota"
        assert exc.value.tenant == "a"
        # the starved tenant's quota never throttles its neighbour
        ctrl.submit("b", 4, 0.0)
        assert ctrl.rejected == {"quota": 1}
        assert ctrl.silent_drops == 0

    def test_backpressure_past_high_water(self):
        ctrl = self._controller(high_water=2)
        ctrl.submit("b", 1, 0.0)
        ctrl.submit("b", 2, 0.0)
        with pytest.raises(Overloaded) as exc:
            ctrl.submit("b", 3, 0.0)
        assert exc.value.reason == "backpressure"
        assert ctrl.submitted == 3
        assert ctrl.admitted == 2
        assert ctrl.silent_drops == 0

    def test_closed_service_sheds_unavailable(self):
        ctrl = self._controller()
        with pytest.raises(Overloaded) as exc:
            ctrl.submit("b", 1, 0.0, open_for_business=False)
        assert exc.value.reason == "unavailable"

    def test_requeue_bypasses_quota_and_bound(self):
        ctrl = self._controller(high_water=1)
        ctrl.submit("b", 1, 0.0)
        ctrl.requeue("b", 2)  # over high-water, no Overloaded
        assert len(ctrl.queue) == 2


# ---------------------------------------------------------------------------
# journal


def _blocks(specs):
    """Build real BlockElasticMaps from [(block_id, [(sub, size), ...])]."""
    builder = ElasticMapBuilder(alpha=0.5)
    return [builder.build_block(bid, obs) for bid, obs in specs]


_obs_strategy = st.lists(
    st.tuples(
        st.sampled_from(["m1", "m2", "m3", "m4"]),
        st.integers(min_value=1, max_value=10_000),
    ),
    min_size=1,
    max_size=12,
)
_blocks_strategy = st.lists(_obs_strategy, min_size=1, max_size=6)


class TestJournal:
    def test_round_trip(self):
        blocks = _blocks([(0, [("a", 10)]), (1, [("b", 20), ("a", 5)])])
        journal = MetadataJournal()
        for bm in blocks:
            assert journal.append_block(bm)
        replayed = MetadataJournal.replay(journal.to_bytes())
        assert sorted(replayed.entries) == [0, 1]
        assert replayed.records == 2
        assert replayed.torn_bytes == 0
        rebuilt = replayed.to_array()
        assert [bm.to_bytes() for bm in rebuilt] == [
            bm.to_bytes() for bm in blocks
        ]

    def test_duplicate_frames_first_commit_wins(self):
        (bm,) = _blocks([(0, [("a", 10)])])
        journal = MetadataJournal()
        assert journal.append_block(bm)
        assert not journal.append_block(bm)  # idempotent
        assert journal.record_count == 1

    def test_bad_magic_raises(self):
        with pytest.raises(ConfigError):
            MetadataJournal.replay(b"NOPE" + b"\x00" * 16)

    @given(specs=_blocks_strategy, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_replay_after_crash_at_any_byte_is_byte_identical(
        self, specs, data
    ):
        """Crash anywhere in the journal: replaying the prefix and
        re-indexing the lost blocks reproduces the uninterrupted array."""
        blocks = _blocks(list(enumerate(specs)))
        journal = MetadataJournal()
        for bm in blocks:
            journal.append_block(bm)
        blob = journal.to_bytes()
        full_digest = array_digest(
            MetadataJournal.replay(blob).to_array()
        )

        cut = data.draw(
            st.integers(min_value=len(b"RPJ1"), max_value=len(blob)),
            label="crash offset",
        )
        replayed = MetadataJournal.replay(blob[:cut])
        offsets = MetadataJournal.frame_offsets(blob)
        committed = max(k for k, off in enumerate(offsets) if off <= cut)
        assert replayed.records == committed

        # deterministic re-indexing of what the torn tail lost
        recovered = MetadataJournal.from_bytes(blob[:cut])
        for bm in blocks:
            recovered.append_block(bm)
        assert (
            array_digest(MetadataJournal.replay(recovered.to_bytes()).to_array())
            == full_digest
        )

    def test_truncation_at_every_byte_never_raises(self):
        blocks = _blocks([(0, [("a", 10)]), (1, [("b", 7)])])
        journal = MetadataJournal()
        for bm in blocks:
            journal.append_block(bm)
        blob = journal.to_bytes()
        offsets = MetadataJournal.frame_offsets(blob)
        for cut in range(len(b"RPJ1"), len(blob) + 1):
            replayed = MetadataJournal.replay(blob[:cut])
            committed = max(k for k, off in enumerate(offsets) if off <= cut)
            assert replayed.records == committed

    def test_corrupt_checksum_stops_replay(self):
        blocks = _blocks([(0, [("a", 10)]), (1, [("b", 7)])])
        journal = MetadataJournal()
        for bm in blocks:
            journal.append_block(bm)
        blob = bytearray(journal.to_bytes())
        offsets = MetadataJournal.frame_offsets(blob)
        blob[offsets[2] - 1] ^= 0xFF  # flip a checksum byte of frame 1
        replayed = MetadataJournal.replay(bytes(blob))
        assert replayed.records == 1
        assert 0 in replayed.entries and 1 not in replayed.entries

    def test_corrupt_non_final_frame_raises_typed(self):
        """A checksum failure with committed frames *behind* it is silent
        data loss, not a crash artifact — replay must refuse, typed."""
        from repro.errors import TornFrameError

        blocks = _blocks([(0, [("a", 10)]), (1, [("b", 7)]), (2, [("a", 3)])])
        journal = MetadataJournal()
        for bm in blocks:
            journal.append_block(bm)
        blob = bytearray(journal.to_bytes())
        offsets = MetadataJournal.frame_offsets(blob)
        blob[offsets[1] + 8] ^= 0xFF  # corrupt frame 1's body, frame 2 intact
        with pytest.raises(TornFrameError) as exc:
            MetadataJournal.replay(bytes(blob))
        assert exc.value.offset == offsets[1]
        assert exc.value.expected_checksum != exc.value.actual_checksum
        with pytest.raises(TornFrameError):
            MetadataJournal.frame_offsets(bytes(blob))

    def test_torn_final_frame_is_clean_stop(self):
        """The same corruption in the *final* frame is a torn in-place
        write: replay stops cleanly at the last good frame."""
        blocks = _blocks([(0, [("a", 10)]), (1, [("b", 7)])])
        journal = MetadataJournal()
        for bm in blocks:
            journal.append_block(bm)
        blob = journal.to_bytes()
        offsets = MetadataJournal.frame_offsets(blob)
        # truncated mid-frame: a crash cut the last write short
        replayed = MetadataJournal.replay(blob[: offsets[2] - 3])
        assert replayed.records == 1
        assert replayed.torn_bytes > 0


# ---------------------------------------------------------------------------
# retry jitter satellite


class TestRetryJitter:
    def test_defaults_unchanged(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(3) == 2.0

    def test_full_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, jitter="full")
        a = policy.backoff(2, task_key="t", seed=1)
        b = policy.backoff(2, task_key="t", seed=1)
        assert a == b
        assert 0.0 <= a <= 2.0
        assert policy.backoff(2, task_key="t", seed=2) != a

    def test_max_elapsed_caps_delay(self):
        policy = RetryPolicy(backoff_base_s=4.0, max_elapsed_s=5.0)
        assert policy.backoff(1, waited_s=3.0) == 2.0
        assert policy.backoff(1, waited_s=5.0) == 0.0

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter="gaussian")


# ---------------------------------------------------------------------------
# simulator cancellation


class TestSimulatorCancelAt:
    def _tasks(self):
        return [
            SimTask(task_id="a", node=0, duration=2.0),
            SimTask(task_id="b", node=0, duration=2.0, deps=frozenset({"a"})),
            SimTask(task_id="c", node=0, duration=2.0, deps=frozenset({"b"})),
        ]

    def test_cancel_cuts_pending_tasks(self):
        result = DiscreteEventSimulator(slots_per_node=1).run(
            self._tasks(), cancel_at=3.0
        )
        assert result.cancelled
        assert result.cancelled_tasks == ["b", "c"]
        assert set(result.timeline.intervals) == {"a"}

    def test_cancel_none_is_run_to_completion(self):
        full = DiscreteEventSimulator(slots_per_node=1).run(self._tasks())
        assert not full.cancelled
        assert full.makespan == 6.0

    def test_cancel_after_makespan_changes_nothing(self):
        full = DiscreteEventSimulator(slots_per_node=1).run(
            self._tasks(), cancel_at=100.0
        )
        assert not full.cancelled
        assert full.makespan == 6.0

    def test_negative_cancel_rejected(self):
        with pytest.raises(ConfigError):
            DiscreteEventSimulator().run(self._tasks(), cancel_at=-1.0)


# ---------------------------------------------------------------------------
# summary invariants


class TestServiceSummary:
    def test_silent_drop_refused(self):
        with pytest.raises(ConfigError):
            ServiceSummary(tenants=1, submitted=3, admitted=1, completed=1)

    def test_unterminated_job_refused(self):
        with pytest.raises(ConfigError):
            ServiceSummary(tenants=1, submitted=2, admitted=2, completed=1)

    def test_valid_summary_reconciles(self):
        summary = ServiceSummary(
            tenants=1,
            submitted=3,
            admitted=2,
            completed=1,
            cancelled_timeout=1,
            rejected={"quota": 1},
        )
        assert summary.silent_drops == 0
        assert summary.rejected_total == 1


# ---------------------------------------------------------------------------
# service drill (slow-ish: builds a real environment per drill)


@pytest.fixture(scope="module")
def small_drill():
    return DrillConfig(num_nodes=8, jobs=8, append_batches=1)


class TestServiceDrill:
    def test_rerun_is_identical(self, small_drill):
        first = run_service_drill(small_drill)
        second = run_service_drill(small_drill)
        assert first == second

    def test_crash_vs_no_crash_digests_agree(self, small_drill):
        from dataclasses import replace

        healthy = run_service_drill(small_drill)
        crashed = run_service_drill(replace(small_drill, crash=True))
        assert crashed.service_crashes == 1
        assert crashed.journal_replays == 1
        assert crashed.metadata_digest == healthy.metadata_digest
        assert crashed.results_digest == healthy.results_digest

    def test_timeout_job_cancelled_and_slot_released(self, small_drill):
        obs = Observability.create()
        summary = run_service_drill(small_drill, obs=obs)
        assert summary.cancelled_timeout == 1
        # every other admitted job still completed: the cancelled job's
        # slot was released back to the pool
        assert summary.completed == summary.admitted - 1
        job_spans = [
            s for s in obs.tracer.spans if s.category == "service-job"
        ]
        cancelled = [s for s in job_spans if s.attrs["status"] == "timeout"]
        assert len(cancelled) == 1
        # rollback: no partial task spans survive for the cancelled job
        prefix = f"task/{cancelled[0].name.split('/', 1)[1]}"
        assert not any(s.name.startswith(prefix) for s in obs.tracer.spans)

    def test_deadline_expired_in_queue_is_typed(self):
        setup = build_drill(DrillConfig(num_nodes=8, jobs=8, append_batches=1))
        from dataclasses import replace as dc_replace

        # shrink one queued job's deadline below its dispatch time
        requests = list(setup.requests)
        requests[3] = dc_replace(
            requests[3], deadline_s=requests[3].submit_time + 1e-6
        )
        summary = setup.service.run(requests, setup.appends)
        assert summary.cancelled_deadline >= 1
        assert summary.silent_drops == 0

    def test_degraded_windows_reported(self):
        summary = run_service_drill(
            DrillConfig(num_nodes=8, jobs=8, append_batches=1, partition=True)
        )
        assert summary.degraded_intervals
        assert summary.degraded_seconds > 0

    def test_overload_sheds_with_typed_backpressure(self):
        summary = run_service_drill(
            DrillConfig(
                num_nodes=8,
                jobs=16,
                append_batches=1,
                pressure=4.0,
                slots=1,
                high_water=3,
            )
        )
        assert summary.rejected.get("backpressure", 0) > 0
        assert summary.silent_drops == 0
        assert summary.wait_p99_s > 0


# ---------------------------------------------------------------------------
# typed errors


class TestServiceErrors:
    def test_overloaded_carries_tenant_and_reason(self):
        err = Overloaded("full", tenant="t", reason="backpressure")
        assert err.tenant == "t"
        assert err.reason == "backpressure"

    def test_deadline_exceeded_fields(self):
        err = DeadlineExceeded("late", job_id="j", tenant="t", limit_s=2.0)
        assert err.job_id == "j"
        assert err.limit_s == 2.0

    def test_service_crash_validation(self):
        with pytest.raises(ConfigError):
            ServiceCrash(time=-1.0)
        plan = FaultPlan(service_crashes=(ServiceCrash(time=5.0),))
        assert not plan.is_empty()
