"""Tests for the discrete-event simulator: event loop, adapter, gantt."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.sim import (
    DiscreteEventSimulator,
    JobGraphBuilder,
    SimTask,
    build_job_graph,
    render_gantt,
)


def _t(tid, node=0, dur=1.0, deps=(), kind="task", job="j", release=0.0):
    return SimTask(
        task_id=tid,
        node=node,
        duration=dur,
        deps=frozenset(deps),
        kind=kind,
        job=job,
        release_time=release,
    )


class TestEventLoop:
    def test_single_task(self):
        r = DiscreteEventSimulator().run([_t("a", dur=5.0)])
        assert r.timeline.intervals["a"] == (0.0, 5.0)
        assert r.makespan == 5.0

    def test_sequential_on_one_slot(self):
        r = DiscreteEventSimulator(slots_per_node=1).run(
            [_t("a", dur=2.0), _t("b", dur=3.0)]
        )
        # same node, one slot: serialized
        spans = sorted(r.timeline.intervals.values())
        assert spans[0][1] <= spans[1][0]
        assert r.makespan == 5.0

    def test_parallel_on_two_slots(self):
        r = DiscreteEventSimulator(slots_per_node=2).run(
            [_t("a", dur=2.0), _t("b", dur=3.0)]
        )
        assert r.makespan == 3.0

    def test_parallel_across_nodes(self):
        r = DiscreteEventSimulator().run(
            [_t("a", node=0, dur=2.0), _t("b", node=1, dur=3.0)]
        )
        assert r.makespan == 3.0

    def test_dependency_ordering(self):
        r = DiscreteEventSimulator().run(
            [_t("a", dur=2.0), _t("b", node=1, dur=1.0, deps={"a"})]
        )
        assert r.timeline.start_of("b") >= r.timeline.end_of("a")
        assert r.makespan == 3.0

    def test_diamond_dependencies(self):
        tasks = [
            _t("src", dur=1.0),
            _t("left", node=1, dur=2.0, deps={"src"}),
            _t("right", node=2, dur=3.0, deps={"src"}),
            _t("sink", node=0, dur=1.0, deps={"left", "right"}),
        ]
        r = DiscreteEventSimulator().run(tasks)
        assert r.timeline.start_of("sink") == 4.0
        assert r.makespan == 5.0

    def test_release_time_respected(self):
        r = DiscreteEventSimulator().run([_t("a", dur=1.0, release=10.0)])
        assert r.timeline.start_of("a") == 10.0

    def test_fifo_within_node(self):
        tasks = [_t(f"t{i}", dur=1.0) for i in range(5)]
        r = DiscreteEventSimulator().run(tasks)
        starts = [r.timeline.start_of(f"t{i}") for i in range(5)]
        assert starts == sorted(starts)
        assert r.makespan == 5.0

    def test_zero_duration_tasks(self):
        r = DiscreteEventSimulator().run([_t("a", dur=0.0), _t("b", dur=0.0, deps={"a"})])
        assert r.makespan == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            DiscreteEventSimulator().run([_t("a"), _t("a")])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ConfigError):
            DiscreteEventSimulator().run([_t("a", deps={"ghost"})])

    def test_cycle_rejected(self):
        with pytest.raises(ConfigError):
            DiscreteEventSimulator().run(
                [_t("a", deps={"b"}), _t("b", deps={"a"})]
            )

    def test_self_dep_rejected(self):
        with pytest.raises(ConfigError):
            _t("a", deps={"a"})

    def test_slots_validated(self):
        with pytest.raises(ConfigError):
            DiscreteEventSimulator(slots_per_node=0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.floats(0.0, 10.0)),
            min_size=1,
            max_size=25,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_chain_graph_consistent(self, specs, slots):
        """Random chain graphs: every task runs after its dep, makespan is
        at least the critical path and at most the serial sum."""
        tasks = []
        prev = None
        for i, (node, dur) in enumerate(specs):
            deps = {prev} if prev is not None and i % 2 == 0 else set()
            tid = f"t{i}"
            tasks.append(_t(tid, node=node, dur=dur, deps=deps))
            prev = tid
        r = DiscreteEventSimulator(slots_per_node=slots).run(tasks)
        total = sum(d for _n, d in specs)
        assert r.makespan <= total + 1e-6
        for task in tasks:
            for dep in task.deps:
                assert (
                    r.timeline.start_of(task.task_id)
                    >= r.timeline.end_of(dep) - 1e-9
                )


class TestTimelineViews:
    def _run(self):
        tasks = [
            _t("a", node=0, dur=2.0, kind="map", job="j1"),
            _t("b", node=1, dur=4.0, kind="map", job="j1"),
            _t("c", node=0, dur=1.0, deps={"a", "b"}, kind="reduce", job="j1"),
        ]
        return DiscreteEventSimulator().run(tasks).timeline

    def test_job_span(self):
        tl = self._run()
        start, end = tl.job_span("j1")
        assert start == 0.0 and end == 5.0

    def test_job_span_unknown(self):
        with pytest.raises(ConfigError):
            self._run().job_span("nope")

    def test_node_busy_time(self):
        tl = self._run()
        assert tl.node_busy_time(0) == 3.0
        assert tl.node_busy_time(1) == 4.0

    def test_by_kind(self):
        tl = self._run()
        assert tl.by_kind("map") == ["a", "b"]
        assert tl.by_kind("reduce") == ["c"]

    def test_utilization(self):
        tl = self._run()
        u = tl.utilization([0, 1], 1)
        assert u == pytest.approx(7.0 / 10.0)
        with pytest.raises(ConfigError):
            tl.utilization([0], 0)


class TestAdapter:
    def test_single_job_close_to_engine(self):
        from repro.experiments.config import ReferenceConfig, build_movie_environment
        from repro.mapreduce.apps import word_count_job

        env = build_movie_environment(ReferenceConfig.small())
        job = word_count_job()
        assignment = env.datanet.schedule(env.target, skip_absent=False)
        tasks = build_job_graph(
            env.engine.cost, env.dataset, env.target, job, assignment
        )
        sim = DiscreteEventSimulator().run(tasks)
        engine = env.engine.run_job(env.dataset, env.target, job, assignment)
        assert sim.makespan == pytest.approx(engine.total_time, rel=0.05)

    def test_phase_ordering(self):
        from repro.experiments.config import ReferenceConfig, build_movie_environment
        from repro.mapreduce.apps import moving_average_job

        env = build_movie_environment(ReferenceConfig.small())
        job = moving_average_job()
        assignment = env.datanet.schedule(env.target, skip_absent=False)
        tasks = build_job_graph(
            env.engine.cost, env.dataset, env.target, job, assignment
        )
        tl = DiscreteEventSimulator().run(tasks).timeline
        last_sel = max(tl.end_of(t) for t in tl.by_kind("selection"))
        first_map = min(tl.start_of(t) for t in tl.by_kind("map"))
        assert first_map >= last_sel - 1e-9
        last_map = max(tl.end_of(t) for t in tl.by_kind("map"))
        first_red = min(tl.start_of(t) for t in tl.by_kind("reduce"))
        assert first_red >= last_map - 1e-9

    def test_analysis_requires_data(self):
        from repro.mapreduce.apps import word_count_job
        from repro.mapreduce.costmodel import ClusterCostModel

        builder = JobGraphBuilder(ClusterCostModel())
        with pytest.raises(ConfigError):
            builder.add_analysis("x", word_count_job(), {})


class TestGantt:
    def _timeline(self):
        tasks = [
            _t("a", node=0, dur=3.0, kind="map", job="alpha"),
            _t("b", node=1, dur=6.0, kind="map", job="beta"),
            _t("c", node=0, dur=2.0, deps={"a"}, kind="reduce", job="alpha"),
        ]
        return DiscreteEventSimulator().run(tasks).timeline

    def test_renders_rows_per_node(self):
        out = render_gantt(self._timeline(), width=30)
        lines = out.splitlines()
        assert len(lines) == 4  # header + 2 nodes + legend
        assert "M" in out and "R" in out

    def test_by_job_glyphs(self):
        out = render_gantt(self._timeline(), width=30, by_job=True)
        assert "A" in out and "B" in out

    def test_idle_shown(self):
        out = render_gantt(self._timeline(), width=30)
        assert "." in out

    def test_validation(self):
        tl = self._timeline()
        with pytest.raises(ConfigError):
            render_gantt(tl, width=0)
        from repro.sim.tasks import TaskTimeline

        with pytest.raises(ConfigError):
            render_gantt(TaskTimeline(intervals={}, tasks={}))

    def test_zero_duration_timeline_raises_config_error(self):
        from repro.sim.tasks import SimTask, TaskTimeline

        tl = TaskTimeline(intervals={"a": (0.0, 0.0)}, tasks={})
        tl.tasks["a"] = SimTask(task_id="a", node=0, duration=0.0)
        with pytest.raises(ConfigError):
            render_gantt(tl)

    def test_empty_node_list_raises_config_error(self):
        with pytest.raises(ConfigError):
            render_gantt(self._timeline(), nodes=[])

    def test_legend_lists_kind_glyphs(self):
        legend = render_gantt(self._timeline(), width=30).splitlines()[-1]
        assert legend.startswith("legend:")
        for glyph in ("S=selection", "M=map", "s=shuffle", "R=reduce",
                      "c=cleanup", "#=other", ".=idle"):
            assert glyph in legend

    def test_by_job_legend_enumerates_jobs(self):
        legend = render_gantt(
            self._timeline(), width=30, by_job=True
        ).splitlines()[-1]
        assert "A=alpha" in legend and "B=beta" in legend
