"""Tests for the Count-Min sketch and HyperLogLog."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.countmin import CountMinSketch
from repro.core.hyperloglog import HyperLogLog
from repro.errors import ConfigError


class TestCountMin:
    def test_never_undercounts(self):
        cm = CountMinSketch(epsilon=0.01, delta=0.01)
        truth = {f"k{i}": (i + 1) * 10 for i in range(200)}
        cm.update(truth.items())
        for key, count in truth.items():
            assert cm.estimate(key) >= count

    def test_error_within_bound(self):
        cm = CountMinSketch(epsilon=0.005, delta=0.01, seed=3)
        rng = np.random.default_rng(0)
        truth = {f"k{i}": int(rng.integers(1, 1000)) for i in range(500)}
        cm.update(truth.items())
        bound = cm.error_bound()
        violations = sum(
            1 for k, c in truth.items() if cm.estimate(k) - c > bound
        )
        assert violations <= max(1, int(0.05 * len(truth)))  # delta slack

    def test_absent_key_usually_zero(self):
        cm = CountMinSketch(epsilon=0.001, delta=0.01)
        cm.update((f"k{i}", 5) for i in range(50))
        zeros = sum(1 for i in range(200) if cm.estimate(f"absent{i}") == 0)
        assert zeros > 150

    def test_contains(self):
        cm = CountMinSketch()
        cm.add("x", 3)
        assert "x" in cm

    def test_total_exact(self):
        cm = CountMinSketch()
        cm.add("a", 10)
        cm.add("b", 5)
        cm.add("a", 1)
        assert cm.total == 16

    def test_zero_amount_noop(self):
        cm = CountMinSketch()
        cm.add("a", 0)
        assert cm.total == 0

    def test_conservative_update_tightens(self):
        """Conservative update estimates are never looser than plain CM's
        lower bound (the true count)."""
        cm = CountMinSketch(epsilon=0.2, delta=0.5, seed=1)  # tiny, collision-prone
        for i in range(100):
            cm.add(f"k{i}", 1)
        cm.add("target", 7)
        assert cm.estimate("target") >= 7

    def test_serialization_roundtrip(self):
        cm = CountMinSketch(epsilon=0.02, delta=0.05, seed=9)
        cm.update((f"k{i}", i + 1) for i in range(50))
        back = CountMinSketch.from_bytes(cm.to_bytes())
        assert back.width == cm.width and back.depth == cm.depth
        assert back.total == cm.total
        for i in range(50):
            assert back.estimate(f"k{i}") == cm.estimate(f"k{i}")

    def test_serialization_rejects_garbage(self):
        with pytest.raises(ConfigError):
            CountMinSketch.from_bytes(b"xx")
        cm = CountMinSketch()
        with pytest.raises(ConfigError):
            CountMinSketch.from_bytes(cm.to_bytes()[:-4])

    def test_memory_accounting(self):
        cm = CountMinSketch(epsilon=0.01, delta=0.01)
        assert cm.memory_bytes == cm.width * cm.depth * 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            CountMinSketch(epsilon=0.0)
        with pytest.raises(ConfigError):
            CountMinSketch(delta=1.0)
        with pytest.raises(ConfigError):
            CountMinSketch().add("x", -1)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=6), st.integers(1, 1000), max_size=60
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_lower_bounded(self, truth):
        cm = CountMinSketch(epsilon=0.01, delta=0.05)
        cm.update(truth.items())
        for key, count in truth.items():
            assert cm.estimate(key) >= count


class TestHyperLogLog:
    def test_small_range_exactish(self):
        hll = HyperLogLog(precision=12)
        hll.update(f"item{i}" for i in range(100))
        assert len(hll) == pytest.approx(100, abs=5)

    def test_large_range_within_error(self):
        hll = HyperLogLog(precision=12)
        n = 50_000
        hll.update(f"item{i}" for i in range(n))
        assert hll.estimate() == pytest.approx(n, rel=4 * hll.relative_error)

    def test_duplicates_not_counted(self):
        hll = HyperLogLog()
        for _ in range(10):
            hll.update(f"x{i}" for i in range(50))
        assert len(hll) == pytest.approx(50, abs=4)

    def test_empty(self):
        assert HyperLogLog().estimate() == 0.0

    def test_merge_equals_union(self):
        a = HyperLogLog(precision=11, seed=2)
        b = HyperLogLog(precision=11, seed=2)
        a.update(f"a{i}" for i in range(1000))
        b.update(f"b{i}" for i in range(1000))
        both = a.merge(b)
        assert both.estimate() == pytest.approx(2000, rel=0.15)

    def test_merge_idempotent_on_same_data(self):
        a = HyperLogLog(seed=1)
        a.update(f"x{i}" for i in range(500))
        merged = a.merge(a)
        assert merged.estimate() == pytest.approx(a.estimate(), rel=1e-9)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ConfigError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=12))
        with pytest.raises(ConfigError):
            HyperLogLog(seed=1).merge(HyperLogLog(seed=2))

    def test_precision_controls_memory(self):
        assert HyperLogLog(precision=10).memory_bytes == 1024
        assert HyperLogLog(precision=14).memory_bytes == 16384

    def test_serialization_roundtrip(self):
        hll = HyperLogLog(precision=10, seed=4)
        hll.update(f"k{i}" for i in range(3000))
        back = HyperLogLog.from_bytes(hll.to_bytes())
        assert back.estimate() == hll.estimate()

    def test_serialization_rejects_garbage(self):
        with pytest.raises(ConfigError):
            HyperLogLog.from_bytes(b"z")
        hll = HyperLogLog(precision=8)
        with pytest.raises(ConfigError):
            HyperLogLog.from_bytes(hll.to_bytes()[:-1])

    def test_validation(self):
        with pytest.raises(ConfigError):
            HyperLogLog(precision=3)
        with pytest.raises(ConfigError):
            HyperLogLog(precision=19)

    @given(st.integers(50, 3000), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_estimate_tracks_cardinality(self, n, seed):
        hll = HyperLogLog(precision=12, seed=seed)
        hll.update(f"key-{seed}-{i}" for i in range(n))
        assert hll.estimate() == pytest.approx(n, rel=0.12, abs=10)
