"""Tests for the Count-Min-backed ElasticMap variant."""

from __future__ import annotations

import pytest

from repro.core.builder import ElasticMapBuilder
from repro.core.bucketizer import BucketSeparator, BucketSpec
from repro.core.sketchmap import SketchBlockElasticMap
from repro.errors import ConfigError
from repro.units import KiB


def _blocks():
    return [
        (0, [("hot", 40 * KiB), ("a", 900), ("b", 400), ("c", 120)]),
        (1, [("hot", 20 * KiB), ("a", 700), ("d", 200)]),
    ]


def _spec():
    return BucketSpec.for_block_size(64 * KiB)


class TestSketchBlock:
    def _built(self) -> SketchBlockElasticMap:
        sep = BucketSeparator(_spec())
        sep.observe_many([("hot", 40 * KiB), ("a", 900), ("b", 400), ("c", 120)])
        result = sep.separate(alpha=0.25)
        return SketchBlockElasticMap.from_separation(0, result)

    def test_reports_tail_sizes_flag(self):
        assert SketchBlockElasticMap.reports_tail_sizes
        block = self._built()
        assert block.reports_tail_sizes

    def test_exact_for_dominant(self):
        block = self._built()
        assert block.query("hot") == (40 * KiB, "exact")

    def test_tail_estimate_at_least_truth(self):
        block = self._built()
        size, kind = block.query("a")
        assert kind == "approx"
        assert size >= 900  # CM never undercounts

    def test_absent_usually_zero(self):
        block = self._built()
        absent = sum(
            1 for i in range(100) if block.query(f"ghost{i}")[1] == "absent"
        )
        assert absent > 90

    def test_contains(self):
        block = self._built()
        assert "hot" in block and "a" in block

    def test_memory_includes_sketch(self):
        block = self._built()
        assert block.memory_bits() >= block.sketch.memory_bits


class TestBuilderIntegration:
    def test_countmin_estimates_beat_bloom_for_midsized(self):
        true_a = 900 + 700
        bloom = ElasticMapBuilder(alpha=0.25, spec=_spec()).build(iter(_blocks()))
        sketch = ElasticMapBuilder(
            alpha=0.25, spec=_spec(), tail_store="countmin"
        ).build(iter(_blocks()))
        err_bloom = abs(bloom.estimate_total_size("a") - true_a)
        err_sketch = abs(sketch.estimate_total_size("a") - true_a)
        assert err_sketch <= err_bloom

    def test_dominant_estimates_identical(self):
        true_hot = 60 * KiB
        for store in ("bloom", "countmin"):
            arr = ElasticMapBuilder(
                alpha=0.25, spec=_spec(), tail_store=store
            ).build(iter(_blocks()))
            assert arr.estimate_total_size("hot") == true_hot

    def test_sketch_memory_higher_than_bloom(self):
        bloom = ElasticMapBuilder(alpha=0.25, spec=_spec()).build(iter(_blocks()))
        sketch = ElasticMapBuilder(
            alpha=0.25, spec=_spec(), tail_store="countmin"
        ).build(iter(_blocks()))
        assert sketch.memory_bytes() > bloom.memory_bytes()

    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigError):
            ElasticMapBuilder(alpha=0.3, tail_store="magic")

    def test_scheduling_works_with_sketch_weights(self):
        from repro.core.bipartite import BipartiteGraph
        from repro.core.scheduler import DistributionAwareScheduler

        arr = ElasticMapBuilder(
            alpha=0.25, spec=_spec(), tail_store="countmin"
        ).build(iter(_blocks()))
        weights = arr.block_weights("a")
        graph = BipartiteGraph({0: [0, 1], 1: [1, 2]}, weights, nodes=[0, 1, 2])
        assignment = DistributionAwareScheduler().schedule(graph)
        assert assignment.num_tasks == 2
