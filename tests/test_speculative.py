"""Tests for the speculative-execution model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mapreduce import SpeculativeExecutor


class TestSpeculation:
    def test_no_stragglers_no_backups(self):
        ex = SpeculativeExecutor()
        res = ex.run({0: 10.0, 1: 11.0, 2: 10.5})
        assert res.backups_launched == {}
        assert res.wasted_seconds == 0.0
        assert res.makespan == 11.0

    def test_anomalous_straggler_rescued(self):
        """A straggler slow for *transient* reasons is helped: the backup
        reruns the same input faster on an idle host."""
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 10.0, 1: 10.0, 2: 10.0, 3: 40.0})
        assert 3 in res.backups_launched
        assert res.finish_times[3] < 40.0
        assert res.makespan < 40.0
        assert res.wasted_seconds > 0.0

    def test_data_imbalance_barely_helped(self):
        """The DataNet story: when the straggler's input is simply bigger,
        a backup still has to process it all — speculation recovers only
        the relocation speedup, not the imbalance."""
        ex = SpeculativeExecutor(relocation_speedup=1.2)
        durations = {0: 10.0, 1: 10.0, 2: 10.0, 3: 40.0}
        res = ex.run(durations)
        # backup: starts ~10.5, runs 40/1.2 = 33.3 -> finishes ~43.8 > 40
        assert res.finish_times[3] >= 40.0 * 0.85
        assert res.makespan > 30.0  # nowhere near the balanced 10s

    def test_non_straggler_untouched(self):
        ex = SpeculativeExecutor(relocation_speedup=3.0)
        res = ex.run({0: 10.0, 1: 12.0, 2: 50.0})
        assert res.finish_times[0] == 10.0
        assert res.finish_times[1] == 12.0

    def test_backup_host_is_fastest_finisher(self):
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 5.0, 1: 10.0, 2: 10.0, 3: 60.0})
        assert res.backups_launched.get(3) == 0

    def test_multiple_stragglers(self):
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 10.0, 1: 10.0, 2: 10.0, 3: 50.0, 4: 45.0})
        assert res.makespan < 50.0

    def test_all_zero_durations(self):
        ex = SpeculativeExecutor()
        res = ex.run({0: 0.0, 1: 0.0})
        assert res.makespan == 0.0
        assert res.backups_launched == {}

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpeculativeExecutor(slowdown_threshold=1.0)
        with pytest.raises(ConfigError):
            SpeculativeExecutor(relocation_speedup=0.9)
        with pytest.raises(ConfigError):
            SpeculativeExecutor(launch_delay=-1)
        with pytest.raises(ConfigError):
            SpeculativeExecutor().run({})
        with pytest.raises(ConfigError):
            SpeculativeExecutor().run({0: -1.0})


class TestSchedulingVsSpeculation:
    def test_datanet_beats_speculation_on_imbalanced_input(self):
        """End-to-end: apply speculation to the imbalanced (stock) map
        phase and compare with DataNet's balanced phase — proactive
        balancing should win."""
        from repro.experiments import ReferenceConfig
        from repro.experiments.pipeline import run_reference_pipeline

        pipe = run_reference_pipeline(ReferenceConfig.small())
        base_maps = pipe.without_datanet.jobs["top_k_search"].map_times
        aware_maps = pipe.with_datanet.jobs["top_k_search"].map_times
        spec = SpeculativeExecutor().run(base_maps)
        assert max(aware_maps.values()) <= spec.makespan * 1.1


class TestSpeculationEdgeCases:
    """Satellite coverage: all-slow waves, exact threshold ties, disabled
    speculation, and health-tightened thresholds — for both the analytic
    executor and the dynamic simulator."""

    def _sim_tasks(self, durations, kind="map"):
        from repro.sim.tasks import SimTask

        return [
            SimTask(task_id=f"t{i}", node=i, duration=d, kind=kind)
            for i, d in enumerate(durations)
        ]

    def test_all_tasks_slow_wave_never_speculates(self):
        """A uniformly slow wave has no straggler: the median scales with
        the wave, so nothing crosses the relative threshold."""
        from repro.sim.speculation import SpeculativeSimulator

        res = SpeculativeExecutor().run({n: 500.0 for n in range(6)})
        assert res.backups_launched == {} and res.wasted_seconds == 0.0

        run = SpeculativeSimulator().run(self._sim_tasks([500.0] * 6))
        assert run.backups == {} and run.wasted_seconds == 0.0
        assert run.makespan == 500.0
        assert len(run.ledger) == 6  # every task settled exactly once

    def test_exact_tie_at_threshold_not_speculated(self):
        """`duration == threshold * median` is NOT a straggler (strict >)."""
        from repro.sim.speculation import SpeculativeSimulator

        durations = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.5}  # 1.5 == 1.5 x median
        res = SpeculativeExecutor(slowdown_threshold=1.5).run(durations)
        assert res.backups_launched == {}

        run = SpeculativeSimulator(slowdown_threshold=1.5).run(
            self._sim_tasks([1.0, 1.0, 1.0, 1.5])
        )
        assert run.backups == {}
        # ...and just past the tie, speculation fires
        run2 = SpeculativeSimulator(slowdown_threshold=1.5).run(
            self._sim_tasks([1.0, 1.0, 1.0, 1.5000001])
        )
        assert "t3" in run2.backups

    def test_speculation_disabled_by_kind_filter(self):
        """A task set outside `speculate_kinds` gets no backups no matter
        how extreme the straggler."""
        from repro.sim.speculation import SpeculativeSimulator

        run = SpeculativeSimulator(speculate_kinds=("reduce",)).run(
            self._sim_tasks([1.0, 1.0, 1.0, 100.0], kind="map")
        )
        assert run.backups == {} and run.wasted_seconds == 0.0
        assert run.makespan == 100.0

    def test_single_candidate_never_speculates(self):
        from repro.sim.speculation import SpeculativeSimulator

        run = SpeculativeSimulator().run(self._sim_tasks([100.0]))
        assert run.backups == {}

    def test_health_tightens_threshold(self):
        """A 1.4x-median task on a suspected node is speculated even though
        it sits below the uniform 1.5x threshold."""
        durations = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.4}
        uniform = SpeculativeExecutor(slowdown_threshold=1.5).run(durations)
        assert uniform.backups_launched == {}
        tightened = SpeculativeExecutor(slowdown_threshold=1.5).run(
            durations, health={3: 0.5}
        )
        assert 3 in tightened.backups_launched

    def test_health_tightens_threshold_in_simulator(self):
        from repro.sim.speculation import SpeculativeSimulator

        tasks = self._sim_tasks([1.0, 1.0, 1.0, 1.4])
        assert SpeculativeSimulator(slowdown_threshold=1.5).run(tasks).backups == {}
        run = SpeculativeSimulator(
            slowdown_threshold=1.5, health={3: 0.5}
        ).run(tasks)
        assert "t3" in run.backups

    def test_invalid_health_rejected(self):
        from repro.sim.speculation import SpeculativeSimulator

        with pytest.raises(ConfigError):
            SpeculativeExecutor().run({0: 1.0, 1: 2.0}, health={0: 0.0})
        with pytest.raises(ConfigError):
            SpeculativeSimulator(health={0: 2.0})

    def test_backup_race_settled_through_ledger(self):
        """Every speculated task has exactly one counted completion and one
        duplicate — the ledger proves no double counting."""
        from repro.sim.speculation import SpeculativeSimulator

        run = SpeculativeSimulator(relocation_speedup=2.0).run(
            self._sim_tasks([1.0, 1.0, 1.0, 40.0])
        )
        assert "t3" in run.backups
        assert len(run.ledger) == 4  # one win per ORIGINAL task id
        assert run.ledger.duplicates == len(run.backups)
        win = run.ledger.winner("t3")
        assert win.arrival == run.effective_end["t3"]
        assert win.source == run.backups["t3"]  # the backup copy won
