"""Tests for the speculative-execution model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mapreduce import SpeculativeExecutor


class TestSpeculation:
    def test_no_stragglers_no_backups(self):
        ex = SpeculativeExecutor()
        res = ex.run({0: 10.0, 1: 11.0, 2: 10.5})
        assert res.backups_launched == {}
        assert res.wasted_seconds == 0.0
        assert res.makespan == 11.0

    def test_anomalous_straggler_rescued(self):
        """A straggler slow for *transient* reasons is helped: the backup
        reruns the same input faster on an idle host."""
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 10.0, 1: 10.0, 2: 10.0, 3: 40.0})
        assert 3 in res.backups_launched
        assert res.finish_times[3] < 40.0
        assert res.makespan < 40.0
        assert res.wasted_seconds > 0.0

    def test_data_imbalance_barely_helped(self):
        """The DataNet story: when the straggler's input is simply bigger,
        a backup still has to process it all — speculation recovers only
        the relocation speedup, not the imbalance."""
        ex = SpeculativeExecutor(relocation_speedup=1.2)
        durations = {0: 10.0, 1: 10.0, 2: 10.0, 3: 40.0}
        res = ex.run(durations)
        # backup: starts ~10.5, runs 40/1.2 = 33.3 -> finishes ~43.8 > 40
        assert res.finish_times[3] >= 40.0 * 0.85
        assert res.makespan > 30.0  # nowhere near the balanced 10s

    def test_non_straggler_untouched(self):
        ex = SpeculativeExecutor(relocation_speedup=3.0)
        res = ex.run({0: 10.0, 1: 12.0, 2: 50.0})
        assert res.finish_times[0] == 10.0
        assert res.finish_times[1] == 12.0

    def test_backup_host_is_fastest_finisher(self):
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 5.0, 1: 10.0, 2: 10.0, 3: 60.0})
        assert res.backups_launched.get(3) == 0

    def test_multiple_stragglers(self):
        ex = SpeculativeExecutor(relocation_speedup=2.0)
        res = ex.run({0: 10.0, 1: 10.0, 2: 10.0, 3: 50.0, 4: 45.0})
        assert res.makespan < 50.0

    def test_all_zero_durations(self):
        ex = SpeculativeExecutor()
        res = ex.run({0: 0.0, 1: 0.0})
        assert res.makespan == 0.0
        assert res.backups_launched == {}

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpeculativeExecutor(slowdown_threshold=1.0)
        with pytest.raises(ConfigError):
            SpeculativeExecutor(relocation_speedup=0.9)
        with pytest.raises(ConfigError):
            SpeculativeExecutor(launch_delay=-1)
        with pytest.raises(ConfigError):
            SpeculativeExecutor().run({})
        with pytest.raises(ConfigError):
            SpeculativeExecutor().run({0: -1.0})


class TestSchedulingVsSpeculation:
    def test_datanet_beats_speculation_on_imbalanced_input(self):
        """End-to-end: apply speculation to the imbalanced (stock) map
        phase and compare with DataNet's balanced phase — proactive
        balancing should win."""
        from repro.experiments import ReferenceConfig
        from repro.experiments.pipeline import run_reference_pipeline

        pipe = run_reference_pipeline(ReferenceConfig.small())
        base_maps = pipe.without_datanet.jobs["top_k_search"].map_times
        aware_maps = pipe.with_datanet.jobs["top_k_search"].map_times
        spec = SpeculativeExecutor().run(base_maps)
        assert max(aware_maps.values()) <= spec.makespan * 1.1
