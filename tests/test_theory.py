"""Tests for the Section II-B Gamma workload theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.theory import WorkloadModel, fig2_curves


class TestWorkloadModel:
    def test_expected_node_workload(self):
        m = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
        assert m.expected_node_workload(128) == pytest.approx(512 * 1.2 * 7 / 128)

    def test_node_distribution_mean_matches(self):
        m = WorkloadModel()
        dist = m.node_distribution(64)
        assert dist.mean() == pytest.approx(m.expected_node_workload(64))

    def test_paper_above_2e_count(self):
        """The text's headline number: ~4.0 expected nodes above 2·E at m=128."""
        m = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
        assert m.expected_nodes_above(128, 2.0) == pytest.approx(4.0, abs=0.1)

    def test_paper_underloaded_counts(self):
        """The text quotes 3.9 and 1.5 under-loaded nodes; with the stated
        parameters those values correspond to the E/3 and ~E/4 thresholds
        (the text's 1/2 and 1/3 labels appear shifted — see EXPERIMENTS.md)."""
        m = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
        assert m.expected_nodes_below(128, 1 / 3) == pytest.approx(3.9, abs=0.1)
        assert m.expected_nodes_below(128, 0.25) == pytest.approx(1.5, abs=0.2)

    def test_probabilities_grow_with_cluster_size(self):
        """Figure 2's core claim: extremes become likelier as m grows."""
        m = WorkloadModel()
        for frac, side in ((0.5, "below"), (2.0, "above")):
            fn = m.prob_below if side == "below" else m.prob_above
            probs = [fn(size, frac) for size in (8, 32, 128, 384)]
            assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_probabilities_are_probabilities(self):
        m = WorkloadModel()
        for size in (2, 50, 300):
            assert 0.0 <= m.prob_below(size, 0.5) <= 1.0
            assert 0.0 <= m.prob_above(size, 2.0) <= 1.0

    def test_below_above_complement(self):
        m = WorkloadModel()
        total = m.prob_below(64, 1.0) + m.prob_above(64, 1.0)
        assert total == pytest.approx(1.0)

    def test_density_integrates_to_one(self):
        m = WorkloadModel()
        z = np.linspace(0, 500, 20001)
        pdf = m.density(32, z)
        assert np.trapezoid(pdf, z) == pytest.approx(1.0, abs=1e-3)

    def test_monte_carlo_agrees_with_analytic(self):
        """The closed form (Eq. 2) matches simulation of the block deal."""
        m = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
        rng = np.random.default_rng(0)
        over = 0
        trials = 300
        for _ in range(trials):
            loads = m.sample_node_workloads(128, rng)
            over += int((loads > 2 * m.expected_node_workload(128)).sum())
        assert over / trials == pytest.approx(
            m.expected_nodes_above(128, 2.0), rel=0.35
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadModel(k=0)
        with pytest.raises(ConfigError):
            WorkloadModel(theta=-1)
        with pytest.raises(ConfigError):
            WorkloadModel(num_blocks=0)
        m = WorkloadModel()
        with pytest.raises(ConfigError):
            m.prob_below(0, 0.5)
        with pytest.raises(ConfigError):
            m.prob_below(10, 0.0)


class TestFig2Curves:
    def test_four_curves(self):
        curves = fig2_curves(cluster_sizes=(8, 16, 32))
        assert len(curves) == 4
        for points in curves.values():
            assert [p.num_nodes for p in points] == [8, 16, 32]

    def test_curves_monotone_increasing(self):
        curves = fig2_curves(cluster_sizes=tuple(range(4, 200, 8)))
        for label, points in curves.items():
            probs = [p.probability for p in points]
            assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:])), label

    def test_rarer_extremes_less_probable(self):
        curves = fig2_curves(cluster_sizes=(128,))
        assert (
            curves["P(Z > 3 E)"][0].probability
            < curves["P(Z > 2 E)"][0].probability
        )
        assert (
            curves["P(Z < 1/3 E)"][0].probability
            < curves["P(Z < 1/2 E)"][0].probability
        )
