"""Tests for repro.units: size parsing/formatting and Fibonacci boundaries."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.units import (
    GiB,
    KiB,
    MiB,
    fibonacci_boundaries,
    format_size,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds(self):
        assert parse_size(10.6) == 11

    def test_kb(self):
        assert parse_size("1kb") == 1024

    def test_mb_with_space(self):
        assert parse_size("64 MB") == 64 * MiB

    def test_gb_case_insensitive(self):
        assert parse_size("2GB") == 2 * GiB

    def test_fractional(self):
        assert parse_size("1.5 KB") == 1536

    def test_explicit_b_suffix(self):
        assert parse_size("100b") == 100

    def test_kib_alias(self):
        assert parse_size("3 KiB") == 3 * KiB

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "-5", "1 2 kb"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ConfigError):
            parse_size(-1)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(100) == "100 B"

    def test_kib(self):
        assert format_size(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_size(64 * MiB) == "64.0 MiB"

    def test_gib(self):
        assert format_size(3 * GiB) == "3.0 GiB"

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_magnitude(self, n):
        """Formatted size parses back to within 5% of the original value."""
        text = format_size(n)
        back = parse_size(text.replace(" ", ""))
        assert abs(back - n) <= max(0.05 * n, 1024)


class TestFibonacciBoundaries:
    def test_paper_series(self):
        # The paper's bucket series: 1kb, 2kb, 3kb, 5kb, 8kb, 13kb, 21kb, 34kb
        got = fibonacci_boundaries(1024, 8)
        assert got == [1024, 2048, 3072, 5120, 8192, 13312, 21504, 34816]

    def test_strictly_increasing(self):
        got = fibonacci_boundaries(10, 20)
        assert all(a < b for a, b in zip(got, got[1:]))

    def test_count_respected(self):
        assert len(fibonacci_boundaries(1, 5)) == 5

    @pytest.mark.parametrize("base,count", [(0, 3), (-1, 3), (1, 0), (1, -2)])
    def test_rejects_bad_args(self, base, count):
        with pytest.raises(ConfigError):
            fibonacci_boundaries(base, count)
