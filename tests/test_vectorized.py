"""The vectorized kernels against their scalar reference oracles.

Every batch API added for the profile-guided kernel layer keeps its
scalar counterpart as the source of truth; these properties assert
bit-identity — equal serialized bytes, equal dict insertion order, equal
counters — on randomized inputs, including the empty and single-element
batches where off-by-one bugs live.  The caching layers (DataNet graph
cache, metastore parse cache, ElasticMap blob cache) are checked for
transparency: cached answers must equal freshly computed ones, before
and after mutation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import SCHEMA_NAME, append_record, validate_record
from repro.core.bipartite import BipartiteGraph
from repro.core.bloom import BloomFilter
from repro.core.bucketizer import BucketSeparator
from repro.core.builder import ElasticMapBuilder
from repro.core.countmin import CountMinSketch
from repro.errors import ConfigError, SchedulingError

# small alphabets on purpose: duplicate keys inside one batch are the
# order-sensitive case every batched kernel must get right
_ids = st.lists(
    st.text(alphabet="abcdef", min_size=0, max_size=4), min_size=0, max_size=60
)


class TestBloomBatch:
    @given(_ids, st.integers(0, 2**31), st.sampled_from([16, 64, 1000]))
    @settings(max_examples=60, deadline=None)
    def test_property_add_many_matches_scalar(self, keys, seed, capacity):
        a = BloomFilter(capacity=capacity, error_rate=0.05, seed=seed)
        b = BloomFilter(capacity=capacity, error_rate=0.05, seed=seed)
        before = a.approx_count
        for k in keys:
            a.add(k)
        added = b.add_many(keys)
        assert a.to_bytes() == b.to_bytes()
        assert added == a.approx_count - before

    @given(_ids, _ids, st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_property_contains_many_matches_scalar(self, keys, probes, seed):
        f = BloomFilter(capacity=200, error_rate=0.02, seed=seed)
        f.add_many(keys)
        got = f.contains_many(probes)
        want = np.array([p in f for p in probes], dtype=bool)
        assert got.dtype == np.bool_
        assert got.shape == (len(probes),)
        assert (got == want).all()

    def test_empty_and_single_batches(self):
        f = BloomFilter(capacity=32, error_rate=0.1, seed=3)
        assert f.add_many([]) == 0
        assert f.contains_many([]).shape == (0,)
        assert f.add_many(["only"]) == 1
        assert f.add_many(["only"]) == 0
        assert list(f.contains_many(["only", "other"])) == [True, False]

    def test_sparse_and_dense_paths_agree(self):
        # a filter big enough to route add_many through the sorted
        # (sparse) variant, checked against scalar adds
        big_a = BloomFilter(capacity=50_000_000, error_rate=0.01, seed=1)
        big_b = BloomFilter(capacity=50_000_000, error_rate=0.01, seed=1)
        keys = [f"x-{i % 40}" for i in range(100)]
        for k in keys:
            big_a.add(k)
        big_b.add_many(keys)
        assert big_b.num_bits > 8 * len(keys) * big_b.num_hashes
        assert big_a.to_bytes() == big_b.to_bytes()


class TestBucketizerBatch:
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="xyz", min_size=0, max_size=3),
                st.integers(0, 10**9),
            ),
            max_size=60,
        ),
        st.lists(
            st.tuples(
                st.text(alphabet="xyzw", min_size=0, max_size=3),
                st.integers(0, 10**9),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_observe_batch_matches_scalar(self, batch1, batch2):
        a, b = BucketSeparator(), BucketSeparator()
        for sid, nbytes in batch1 + batch2:
            a.observe(sid, nbytes)
        # two batches: the second one merges into warm separator state
        b.observe_batch([s for s, _ in batch1], [n for _, n in batch1])
        b.observe_many(iter(batch2))
        assert list(a.sizes().items()) == list(b.sizes().items())
        assert a.histogram() == b.histogram()
        ra = a.separate(alpha=0.4)
        rb = b.separate(alpha=0.4)
        assert list(ra.dominant.items()) == list(rb.dominant.items())
        assert list(ra.tail.items()) == list(rb.tail.items())

    def test_empty_and_single_batches(self):
        sep = BucketSeparator()
        sep.observe_batch([], [])
        assert sep.num_subdatasets == 0
        sep.observe_batch(["a"], [123])
        ref = BucketSeparator()
        ref.observe("a", 123)
        assert dict(sep.sizes()) == dict(ref.sizes())

    def test_batch_rejects_bad_input(self):
        sep = BucketSeparator()
        with pytest.raises(ConfigError):
            sep.observe_batch(["a", "b"], [1])
        with pytest.raises(ConfigError):
            sep.observe_batch(["a"], [-1])


class TestCountMinBatch:
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="pq", min_size=0, max_size=2),
                st.integers(0, 500),
            ),
            max_size=50,
        ),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_update_many_matches_scalar(self, items, seed):
        # tiny width forces column collisions, exercising the sequential
        # replay fallback; the tiny alphabet forces duplicate keys
        a = CountMinSketch(epsilon=0.5, delta=0.1, seed=seed)
        b = CountMinSketch(epsilon=0.5, delta=0.1, seed=seed)
        for k, amt in items:
            a.add(k, amt)
        b.update_many([k for k, _ in items], [amt for _, amt in items])
        assert a.to_bytes() == b.to_bytes()
        assert a.total == b.total

    @given(_ids, st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_estimate_many_matches_scalar(self, keys, seed):
        sketch = CountMinSketch(epsilon=0.01, delta=0.05, seed=seed)
        sketch.update_many(keys, [7] * len(keys))
        got = sketch.estimate_many(keys)
        assert got.shape == (len(keys),)
        assert [int(v) for v in got] == [sketch.estimate(k) for k in keys]

    def test_zero_amounts_and_validation(self):
        a = CountMinSketch(seed=1)
        b = CountMinSketch(seed=1)
        b.update_many(["x", "y"], [0, 0])
        assert a.to_bytes() == b.to_bytes()  # zero updates are no-ops
        with pytest.raises(ConfigError):
            b.update_many(["x"], [-3])
        with pytest.raises(ConfigError):
            b.update_many(["x", "y"], [1])
        assert b.update_many([], []) is None
        assert b.estimate_many([]).shape == (0,)


class TestBuilderVectorized:
    @given(st.integers(0, 10**6), st.integers(1, 6), st.integers(0, 80))
    @settings(max_examples=25, deadline=None)
    def test_property_vectorized_build_bit_identical(
        self, seed, blocks, per_block
    ):
        rng = np.random.default_rng(seed)
        scan = []
        for bid in range(blocks):
            ids = [f"s{rng.integers(0, 12)}" for _ in range(per_block)]
            sizes = [int(v) for v in rng.integers(0, 50_000, per_block)]
            scan.append((bid, ids, sizes))
        vec = ElasticMapBuilder(alpha=0.3, vectorized=True).build_arrays(scan)
        sca = ElasticMapBuilder(alpha=0.3, vectorized=False).build(
            [(bid, zip(ids, sizes)) for bid, ids, sizes in scan]
        )
        assert [e.to_bytes() for e in vec] == [e.to_bytes() for e in sca]

    def test_countmin_tail_store_bit_identical(self):
        rng = np.random.default_rng(7)
        scan = [
            (
                bid,
                [f"s{rng.integers(0, 30)}" for _ in range(400)],
                [int(v) for v in rng.integers(1, 9_000, 400)],
            )
            for bid in range(4)
        ]
        vec = ElasticMapBuilder(
            alpha=0.3, tail_store="countmin", vectorized=True
        ).build_arrays(scan)
        sca = ElasticMapBuilder(
            alpha=0.3, tail_store="countmin", vectorized=False
        ).build([(bid, zip(ids, sizes)) for bid, ids, sizes in scan])
        assert [e.to_bytes() for e in vec] == [e.to_bytes() for e in sca]

    def test_scalar_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR", "1")
        builder = ElasticMapBuilder(alpha=0.3, vectorized=True)
        assert builder.vectorized is False
        monkeypatch.setenv("REPRO_SCALAR", "0")
        assert ElasticMapBuilder(alpha=0.3).vectorized is True


class TestBipartiteIncremental:
    @staticmethod
    def _graphs_equal(a: BipartiteGraph, b: BipartiteGraph) -> bool:
        return (
            a.nodes == b.nodes
            and a.blocks == b.blocks
            and all(a.nodes_of(x) == b.nodes_of(x) for x in a.blocks)
            and all(a.weight(x) == b.weight(x) for x in a.blocks)
            and all(a.needed_of(x) == b.needed_of(x) for x in a.blocks)
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_incremental_matches_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        nodes = [f"n{i}" for i in range(6)]
        placement = {
            b: [nodes[i] for i in rng.choice(6, size=3, replace=False)]
            for b in range(8)
        }
        weights = {b: int(w) for b, w in enumerate(rng.integers(0, 100, 8))}
        g = BipartiteGraph(placement, weights, nodes=nodes)
        # drift the placement via incremental mutators...
        moved = int(rng.integers(0, 8))
        placement[moved] = [nodes[i] for i in rng.choice(6, size=2, replace=False)]
        assert g.set_block_nodes(moved, placement[moved]) in (True, False)
        placement[8] = [nodes[0], nodes[5]]
        weights[8] = 42
        g.add_block(8, placement[8], weight=42)
        g.set_weight(moved, weights[moved] + 7)
        weights[moved] += 7
        # ...and compare to a graph rebuilt from scratch
        fresh = BipartiteGraph(placement, weights, nodes=nodes)
        assert self._graphs_equal(g, fresh)

    def test_remove_node_strands_blocks(self):
        g = BipartiteGraph(
            {0: ["a", "b"], 1: ["b"]}, {0: 5, 1: 7}, needed={0: 2, 1: 1}
        )
        stranded = g.remove_node("b")
        assert stranded == [0, 1]
        assert g.blocks == []
        assert "b" not in g.nodes

    def test_add_block_and_set_weight(self):
        g = BipartiteGraph({0: ["a"]}, {0: 1})
        g.add_block(5, ["a", "c"], weight=9, needed=2)
        assert g.nodes_of(5) == {"a", "c"}
        assert g.weight(5) == 9
        g.set_weight(5, 11)
        assert g.weight(5) == 11
        with pytest.raises(SchedulingError):
            g.add_block(5, ["a"])


class TestBenchRecord:
    def _record(self):
        return {
            "schema": SCHEMA_NAME,
            "timestamp": "2026-01-01T00:00:00Z",
            "seed": 1729,
            "quick": True,
            "python": "3.11.7",
            "numpy": "2.4.6",
            "results": {
                "elasticmap_build": {
                    "records": 1000,
                    "blocks": 4,
                    "vectorized_records_per_s": 2.0,
                    "scalar_records_per_s": 1.0,
                    "speedup": 2.0,
                },
                "bloom_membership": {
                    "keys": 10,
                    "lookups": 10,
                    "vectorized_lookups_per_s": 2.0,
                    "scalar_lookups_per_s": 1.0,
                    "vectorized_adds_per_s": 2.0,
                    "scalar_adds_per_s": 1.0,
                    "speedup": 2.0,
                },
                "bucketizer": {
                    "records": 10,
                    "vectorized_records_per_s": 2.0,
                    "scalar_records_per_s": 1.0,
                    "speedup": 2.0,
                },
                "countmin": {
                    "updates": 10,
                    "vectorized_updates_per_s": 2.0,
                    "scalar_updates_per_s": 1.0,
                    "speedup": 2.0,
                },
                "simulator": {
                    "tasks": 10,
                    "events": 20,
                    "events_per_s": 2.0,
                    "reference_events_per_s": 1.0,
                    "speedup": 2.0,
                },
                "scheduling": {
                    "blocks": 10,
                    "cached_graphs_per_s": 2.0,
                    "uncached_graphs_per_s": 1.0,
                    "speedup": 2.0,
                },
            },
        }

    def test_valid_record_passes(self):
        assert validate_record(self._record()) == []

    def test_schema_violations_reported(self):
        bad = self._record()
        bad["schema"] = "bench-core/v0"
        bad["seed"] = "not-an-int"
        del bad["results"]["simulator"]
        bad["results"]["countmin"]["speedup"] = "fast"
        problems = validate_record(bad)
        assert any("schema" in p for p in problems)
        assert any("seed" in p for p in problems)
        assert any("simulator" in p for p in problems)
        assert any("countmin.speedup" in p for p in problems)
        assert validate_record([]) != []

    def test_append_record_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_core.json")
        assert append_record(path, self._record()) == 1
        assert append_record(path, self._record()) == 2
        import json

        records = json.load(open(path))
        assert len(records) == 2
        assert all(validate_record(r) == [] for r in records)

    def test_append_rejects_invalid(self, tmp_path):
        bad = self._record()
        bad["results"]["bucketizer"]["speedup"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            append_record(str(tmp_path / "x.json"), bad)
