"""Tests for the synthetic workload generators."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hdfs import pack_records
from repro.workloads import (
    BurstArrivalModel,
    GammaArrivalModel,
    GitHubEventsGenerator,
    GITHUB_EVENT_TYPES,
    MovieLensGenerator,
    TextGenerator,
    UniformArrivalModel,
    WorldCupGenerator,
    most_popular,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(50, 1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_zero_exponent_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            zipf_weights(0)
        with pytest.raises(ConfigError):
            zipf_weights(10, -1.0)


class TestArrivalModels:
    def test_gamma_offsets_positive(self, rng):
        m = GammaArrivalModel(1.2, 7.0)
        t = m.sample(100.0, 1000, rng)
        assert (t > 100.0).all()

    def test_gamma_mean_offset(self, rng):
        m = GammaArrivalModel(2.0, 5.0)
        assert m.mean_offset() == 10.0
        t = m.sample(0.0, 20000, rng)
        assert t.mean() == pytest.approx(10.0, rel=0.05)

    def test_gamma_clusters_near_anchor(self, rng):
        m = GammaArrivalModel(1.2, 7.0)
        t = m.sample(50.0, 10000, rng)
        # ~80% of arrivals within ~2 means of the anchor
        within = ((t >= 50.0) & (t <= 50.0 + 2 * m.mean_offset())).mean()
        assert within > 0.7

    def test_uniform_covers_duration(self, rng):
        m = UniformArrivalModel(30.0)
        t = m.sample(999.0, 5000, rng)  # anchor ignored
        assert t.min() >= 0 and t.max() <= 30.0
        assert np.histogram(t, bins=3)[0].std() < 200  # roughly flat

    def test_burst_centered_on_anchor(self, rng):
        m = BurstArrivalModel(sigma=0.5)
        t = m.sample(10.0, 5000, rng)
        assert abs(t.mean() - 10.0) < 0.1

    def test_validation(self):
        with pytest.raises(ConfigError):
            GammaArrivalModel(0, 1)
        with pytest.raises(ConfigError):
            UniformArrivalModel(0)
        with pytest.raises(ConfigError):
            BurstArrivalModel(0)
        with pytest.raises(ConfigError):
            GammaArrivalModel().sample(0.0, -1, np.random.default_rng())


class TestTextGenerator:
    def test_sentences_nonempty(self, rng):
        g = TextGenerator(rng=rng)
        out = g.sentences(100)
        assert len(out) == 100
        assert all(out)

    def test_zipf_word_frequencies(self, rng):
        g = TextGenerator(vocab_size=50, zipf_s=1.2, pool_size=2000, rng=rng)
        words = " ".join(g.sentences(3000)).split()
        counts = Counter(words)
        common = counts.most_common()
        # most frequent word much more common than the median word
        assert common[0][1] > 5 * common[len(common) // 2][1]

    def test_vocab_extension(self, rng):
        g = TextGenerator(vocab_size=500, rng=rng)
        assert len(g.vocabulary) == 500

    def test_validation(self):
        with pytest.raises(ConfigError):
            TextGenerator(vocab_size=0)
        with pytest.raises(ConfigError):
            TextGenerator(pool_size=0)
        with pytest.raises(ConfigError):
            TextGenerator(words_per_sentence=(5, 2))
        with pytest.raises(ConfigError):
            TextGenerator().sentences(-1)


class TestMovieLensGenerator:
    def _gen(self, rng, **kw):
        defaults = dict(num_movies=100, total_reviews=5000, duration_days=60.0)
        defaults.update(kw)
        return MovieLensGenerator(rng=rng, **defaults)

    def test_chronological_order(self, rng):
        recs = self._gen(rng).generate()
        assert all(a.timestamp <= b.timestamp for a, b in zip(recs, recs[1:]))

    def test_timestamps_in_window(self, rng):
        recs = self._gen(rng).generate()
        assert all(0.0 <= r.timestamp <= 60.0 for r in recs)

    def test_popularity_skew(self, rng):
        recs = self._gen(rng, zipf_s=1.1).generate()
        counts = Counter(r.sub_id for r in recs)
        top = counts.most_common(1)[0][1]
        assert top > 5 * (len(recs) / 100)  # top movie ≫ average

    def test_content_clustering_in_blocks(self, rng):
        """The paper's core premise: a movie's bytes concentrate in a
        minority of chronological blocks."""
        recs = self._gen(
            rng, num_movies=200, total_reviews=20000, duration_days=120.0
        ).generate()
        blocks = pack_records(recs, 16 * 1024)
        target = most_popular(recs)
        per_block = sorted(
            (b.subdataset_sizes().get(target, 0) for b in blocks), reverse=True
        )
        total = sum(per_block)
        quarter = max(1, len(blocks) // 4)
        assert sum(per_block[:quarter]) > 0.5 * total

    def test_payload_has_rating_prefix(self, rng):
        recs = self._gen(rng).generate()
        rating = float(recs[0].payload.split(" ", 1)[0])
        assert 1.0 <= rating <= 5.0

    def test_deterministic_with_seed(self):
        a = MovieLensGenerator(100, 2000, rng=np.random.default_rng(5)).generate()
        b = MovieLensGenerator(100, 2000, rng=np.random.default_rng(5)).generate()
        assert a == b

    def test_most_popular_rank(self, rng):
        recs = self._gen(rng).generate()
        counts = Counter(r.sub_id for r in recs)
        assert counts[most_popular(recs, 0)] >= counts[most_popular(recs, 1)]
        with pytest.raises(ConfigError):
            most_popular(recs, rank=10**6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MovieLensGenerator(num_movies=0)
        with pytest.raises(ConfigError):
            MovieLensGenerator(total_reviews=-1)
        with pytest.raises(ConfigError):
            MovieLensGenerator(duration_days=0)
        with pytest.raises(ConfigError):
            MovieLensGenerator(rating_levels=())

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_all_records_valid(self, seed):
        recs = MovieLensGenerator(
            num_movies=20, total_reviews=500, duration_days=30.0,
            rng=np.random.default_rng(seed),
        ).generate()
        for r in recs:
            assert r.sub_id.startswith("movie-")
            assert 0.0 <= r.timestamp <= 30.0


class TestGitHubEventsGenerator:
    def test_event_types_from_table(self, rng):
        recs = GitHubEventsGenerator(5000, rng=rng).generate()
        names = {name for name, _rate in GITHUB_EVENT_TYPES}
        assert {r.sub_id for r in recs} <= names

    def test_push_dominates(self, rng):
        recs = GitHubEventsGenerator(20000, rng=rng).generate()
        counts = Counter(r.sub_id for r in recs)
        assert counts["PushEvent"] == max(counts.values())

    def test_no_temporal_clustering(self, rng):
        """IssuesEvent arrivals are roughly stationary over time."""
        recs = GitHubEventsGenerator(
            40000, duration_days=30.0, rate_noise=0.0, rng=rng
        ).generate()
        times = [r.timestamp for r in recs if r.sub_id == "IssuesEvent"]
        hist, _ = np.histogram(times, bins=6, range=(0, 30.0))
        assert hist.max() < 2.5 * max(hist.min(), 1)

    def test_chronological(self, rng):
        recs = GitHubEventsGenerator(2000, rng=rng).generate()
        assert all(a.timestamp <= b.timestamp for a, b in zip(recs, recs[1:]))

    def test_zero_events(self, rng):
        assert GitHubEventsGenerator(0, rng=rng).generate() == []

    def test_custom_event_table(self, rng):
        recs = GitHubEventsGenerator(
            500, event_types=[("A", 1.0), ("B", 1.0)], rng=rng
        ).generate()
        assert {r.sub_id for r in recs} <= {"A", "B"}

    def test_validation(self):
        with pytest.raises(ConfigError):
            GitHubEventsGenerator(-1)
        with pytest.raises(ConfigError):
            GitHubEventsGenerator(10, duration_days=0)
        with pytest.raises(ConfigError):
            GitHubEventsGenerator(10, rate_noise=-1)
        with pytest.raises(ConfigError):
            GitHubEventsGenerator(10, event_types=[])
        with pytest.raises(ConfigError):
            GitHubEventsGenerator(10, event_types=[("A", 0.0)])


class TestWorldCupGenerator:
    def test_bursts_around_kickoffs(self, rng):
        gen = WorldCupGenerator(
            num_matches=8, total_requests=8000, burst_sigma_days=0.1,
            background_fraction=0.0, rng=rng,
        )
        recs = gen.generate()
        by_match = {}
        for r in recs:
            by_match.setdefault(r.sub_id, []).append(r.timestamp)
        for times in by_match.values():
            if len(times) > 50:
                assert np.std(times) < 0.5  # tight burst

    def test_chronological(self, rng):
        recs = WorldCupGenerator(total_requests=2000, rng=rng).generate()
        assert all(a.timestamp <= b.timestamp for a, b in zip(recs, recs[1:]))

    def test_zero_requests(self, rng):
        assert WorldCupGenerator(total_requests=0, rng=rng).generate() == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorldCupGenerator(num_matches=0)
        with pytest.raises(ConfigError):
            WorldCupGenerator(background_fraction=1.5)


class TestMixer:
    def test_namespace(self, rng):
        from repro.hdfs import Record
        from repro.workloads import namespace

        out = namespace([Record("m1", 0.0, "x")], "movies")
        assert out[0].sub_id == "movies/m1"
        with pytest.raises(ConfigError):
            namespace([], "")

    def test_interleave_merges_chronologically(self, rng):
        from repro.hdfs import Record
        from repro.workloads import interleave

        a = [Record("a", float(t), "x") for t in (0, 2, 4)]
        b = [Record("b", float(t), "x") for t in (1, 3, 5)]
        merged = interleave(a, b)
        times = [r.timestamp for r in merged]
        assert times == sorted(times)
        assert len(merged) == 6

    def test_interleave_preserves_within_stream_order(self, rng):
        from repro.hdfs import Record
        from repro.workloads import interleave

        a = [Record("a", 1.0, "first"), Record("a", 1.0, "second")]
        merged = interleave(a, [])
        assert [r.payload for r in merged] == ["first", "second"]

    def test_interleave_rejects_unsorted(self, rng):
        from repro.hdfs import Record
        from repro.workloads import interleave

        bad = [Record("a", 5.0, "x"), Record("a", 1.0, "x")]
        with pytest.raises(ConfigError):
            interleave(bad)
        with pytest.raises(ConfigError):
            interleave()

    def test_mixed_dataset_end_to_end(self, rng):
        """Movie and event streams share blocks; DataNet still balances the
        movie sub-dataset against the mixed background traffic."""
        import numpy as np

        from repro import DataNet, HDFSCluster
        from repro.core.bucketizer import BucketSpec
        from repro.workloads import (
            GitHubEventsGenerator,
            MovieLensGenerator,
            interleave,
            most_popular,
            namespace,
        )

        movies = MovieLensGenerator(
            num_movies=100, total_reviews=5000, duration_days=30.0,
            rng=np.random.default_rng(1),
        ).generate()
        events = GitHubEventsGenerator(
            5000, duration_days=30.0, rng=np.random.default_rng(2)
        ).generate()
        mixed = interleave(namespace(movies, "mv"), namespace(events, "gh"))
        cluster = HDFSCluster(num_nodes=8, block_size=8192,
                              rng=np.random.default_rng(3))
        dataset = cluster.write_dataset("mixed", mixed)
        datanet = DataNet.build(
            dataset, alpha=0.3, spec=BucketSpec.for_block_size(8192)
        )
        target = most_popular(movies)
        assignment = datanet.schedule(f"mv/{target}", skip_absent=False)
        assert assignment.num_tasks == dataset.num_blocks
        est = datanet.estimate_total_size(f"mv/{target}")
        truth = dataset.subdataset_total_bytes(f"mv/{target}")
        assert est == pytest.approx(truth, rel=0.5)
